//! Green-provisioning configurations (paper Table I) and the renewable
//! availability levels of the evaluation.
//!
//! | Config    | RE            | Battery (server level) |
//! |-----------|---------------|------------------------|
//! | RE-Batt   | 30 % servers  | 10 Ah                  |
//! | REOnly    | 30 % servers  | 0                      |
//! | RE-SBatt  | 30 % servers  | 3.2 Ah                 |
//! | SRE-SBatt | 20 % servers  | 3.2 Ah                 |
//!
//! On the 10-server prototype, "30 % servers" means 3 green-provisioned
//! servers with one 275 W-DC panel each (peak AC 3 × 211.75 = 635.25 W) and
//! "SRE" (small renewable) means 2 servers / 2 panels (423.5 W).

use gs_power::battery::BatterySpec;
use gs_power::solar::{PvArray, SolarTrace, WeatherModel};
use gs_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A Table I green-provisioning option.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GreenConfig {
    /// Display name matching the paper.
    pub name: String,
    /// Number of green-provisioned servers (out of the 10-server cluster).
    pub green_servers: usize,
    /// Solar panels feeding the green bus (one per green server).
    pub panels: u32,
    /// Per-server battery capacity in Ah (0 = no battery).
    pub battery_ah: f64,
}

impl GreenConfig {
    /// RE-Batt: 30 % servers green, 10 Ah server batteries.
    pub fn re_batt() -> Self {
        GreenConfig {
            name: "RE-Batt".into(),
            green_servers: 3,
            panels: 3,
            battery_ah: 10.0,
        }
    }

    /// REOnly: 30 % servers green, no batteries.
    pub fn re_only() -> Self {
        GreenConfig {
            name: "REOnly".into(),
            green_servers: 3,
            panels: 3,
            battery_ah: 0.0,
        }
    }

    /// RE-SBatt: 30 % servers green, small 3.2 Ah batteries.
    pub fn re_sbatt() -> Self {
        GreenConfig {
            name: "RE-SBatt".into(),
            green_servers: 3,
            panels: 3,
            battery_ah: 3.2,
        }
    }

    /// SRE-SBatt: 20 % servers green, small 3.2 Ah batteries.
    pub fn sre_sbatt() -> Self {
        GreenConfig {
            name: "SRE-SBatt".into(),
            green_servers: 2,
            panels: 2,
            battery_ah: 3.2,
        }
    }

    /// All four Table I options, in the paper's order.
    pub fn table1() -> [GreenConfig; 4] {
        [
            Self::re_batt(),
            Self::re_only(),
            Self::re_sbatt(),
            Self::sre_sbatt(),
        ]
    }

    /// The PV array of this configuration.
    pub fn pv_array(&self) -> PvArray {
        PvArray::paper_spec(self.panels)
    }

    /// The per-server battery spec, `None` for REOnly.
    pub fn battery_spec(&self) -> Option<BatterySpec> {
        if self.battery_ah > 0.0 {
            Some(BatterySpec::paper_vrla(self.battery_ah))
        } else {
            None
        }
    }
}

/// The renewable-energy availability levels the evaluation sweeps
/// (paper Fig. 5: minimum / medium / maximum windows of the solar trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AvailabilityLevel {
    /// Renewable effectively absent; "the sprinting goal can only be
    /// achieved by the batteries."
    Minimum,
    /// Time-varying supply around half of peak.
    Medium,
    /// Clear-sky peak supply that alone covers full sprinting.
    Maximum,
}

impl AvailabilityLevel {
    /// All levels, in the paper's column order.
    pub const ALL: [AvailabilityLevel; 3] = [
        AvailabilityLevel::Minimum,
        AvailabilityLevel::Medium,
        AvailabilityLevel::Maximum,
    ];

    /// Short label used in figure rows.
    pub fn label(self) -> &'static str {
        match self {
            AvailabilityLevel::Minimum => "Min",
            AvailabilityLevel::Medium => "Med",
            AvailabilityLevel::Maximum => "Max",
        }
    }

    /// A normalized irradiance trace realizing this level for a controlled
    /// burst experiment, reproducible by seed.
    ///
    /// * `Minimum` — zero output (night / storm outage);
    /// * `Medium`  — a weather-modulated trace whose *mean* sits near half
    ///   of peak, with genuine minute-scale intermittency;
    /// * `Maximum` — clear-sky full output for the burst window (the burst
    ///   harness anchors bursts near solar noon).
    pub fn trace(self, seed: u64) -> SolarTrace {
        match self {
            AvailabilityLevel::Minimum => SolarTrace::zero(2),
            AvailabilityLevel::Medium => {
                // A heavily clouded day: the partly-cloudy flicker scaled
                // so the midday mean lands near 40 % of peak — enough to
                // sustain reduced sprinting but (unlike Maximum) not the
                // full 465 W rack sprint, even with battery assistance.
                let mut rng = SimRng::seed_from_u64(seed);
                let model = WeatherModel {
                    regime_probs: [0.05, 0.9, 0.05],
                    ..WeatherModel::default()
                };
                let raw = SolarTrace::generate(2, &model, &mut rng);
                SolarTrace::from_samples(raw.samples().iter().map(|s| s * 0.62).collect())
            }
            AvailabilityLevel::Maximum => SolarTrace::clear_days(2, &WeatherModel::default()),
        }
    }
}

impl std::fmt::Display for AvailabilityLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_sim::SimTime;

    #[test]
    fn table1_matches_paper() {
        let [re_batt, re_only, re_sbatt, sre_sbatt] = GreenConfig::table1();
        assert_eq!(re_batt.name, "RE-Batt");
        assert_eq!((re_batt.green_servers, re_batt.battery_ah), (3, 10.0));
        assert_eq!((re_only.green_servers, re_only.battery_ah), (3, 0.0));
        assert_eq!((re_sbatt.green_servers, re_sbatt.battery_ah), (3, 3.2));
        assert_eq!((sre_sbatt.green_servers, sre_sbatt.battery_ah), (2, 3.2));
    }

    #[test]
    fn pv_peaks_match_paper() {
        assert!((GreenConfig::re_batt().pv_array().peak_ac_watts() - 635.25).abs() < 1e-9);
        assert!((GreenConfig::sre_sbatt().pv_array().peak_ac_watts() - 423.5).abs() < 1e-9);
    }

    #[test]
    fn battery_specs() {
        assert!(GreenConfig::re_only().battery_spec().is_none());
        let spec = GreenConfig::re_batt().battery_spec().unwrap();
        assert_eq!(spec.capacity_ah, 10.0);
        let spec = GreenConfig::re_sbatt().battery_spec().unwrap();
        assert!((spec.capacity_ah - 3.2).abs() < 1e-12);
    }

    #[test]
    fn availability_traces_have_expected_means() {
        let noon = SimTime::from_hours(11);
        let end = SimTime::from_hours(13);
        let min = AvailabilityLevel::Minimum.trace(1);
        assert_eq!(min.window_mean(noon, end), 0.0);
        let max = AvailabilityLevel::Maximum.trace(1);
        assert!(max.window_mean(noon, end) > 0.9);
        let med = AvailabilityLevel::Medium.trace(1);
        let m = med.window_mean(noon, end);
        assert!((0.3..0.8).contains(&m), "medium mean {m}");
        // Medium sits strictly between the extremes.
        assert!(m < max.window_mean(noon, end));
    }

    #[test]
    fn labels() {
        assert_eq!(AvailabilityLevel::Minimum.to_string(), "Min");
        assert_eq!(AvailabilityLevel::ALL.len(), 3);
    }
}
