//! Figure 5: the SPECjbb power profile of the three green-provisioned
//! servers as a function of renewable availability over a day, with the
//! minimum / medium / maximum windows the evaluation samples.

use crate::common::RunOpts;
use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::engine::{Engine, EngineConfig};
use greensprint::pmk::Strategy;
use gs_sim::{SimDuration, SimTime};
use gs_workload::apps::Application;

pub fn run(opts: &RunOpts) {
    // A full day under the weather-modulated (Medium) trace, sprinting
    // whenever power allows — exactly the regime the figure visualizes.
    let cfg = EngineConfig {
        app: Application::SpecJbb,
        green: GreenConfig::re_batt(),
        strategy: Strategy::Hybrid,
        availability: AvailabilityLevel::Medium,
        burst_duration: SimDuration::from_hours(24),
        burst_intensity_cores: 12,
        burst_start_hour: 0.0,
        measurement: opts.measurement,
        seed: opts.seed,
        ..EngineConfig::default()
    };
    let trace = AvailabilityLevel::Medium.trace(opts.seed);
    let (_, monitor) = Engine::new(cfg).run_with_monitor();

    println!("\n=== Figure 5: renewable power vs green-server power demand over a day (SPECjbb, RE-Batt) ===");
    println!(
        "{:>5} {:>18} {:>18}",
        "hour", "renewable_power_W", "power_demand_W"
    );
    for h2 in 0..48 {
        let t = SimTime::from_mins(h2 * 30);
        let re = monitor.re_supply().sample_at(t).unwrap_or(0.0);
        let demand = monitor.demand().sample_at(t).unwrap_or(0.0);
        println!("{:>5.1} {:>18.1} {:>18.1}", t.as_hours_f64(), re, demand);
    }

    let series = |ts: &gs_sim::TimeSeries| -> Vec<f64> {
        (0..48)
            .map(|hh| ts.sample_at(SimTime::from_mins(hh * 30)).unwrap_or(0.0))
            .collect()
    };
    println!(
        "# renewable {}",
        crate::common::sparkline(&series(monitor.re_supply()))
    );
    println!(
        "# demand    {}",
        crate::common::sparkline(&series(monitor.demand()))
    );

    // Locate the windows the evaluation samples from this profile.
    let w = SimDuration::from_mins(60);
    let span = SimDuration::from_hours(24);
    let best = trace.best_window(w, span);
    let worst = trace.worst_window(w, span);
    println!(
        "# maximum-availability window starts {:.1} h (mean irradiance {:.2}); minimum window starts {:.1} h (mean {:.2})",
        best.as_hours_f64(),
        trace.window_mean(best, best + w),
        worst.as_hours_f64(),
        trace.window_mean(worst, worst + w),
    );
    println!("# medium availability = daytime weather-attenuated periods between the two extremes");
}
