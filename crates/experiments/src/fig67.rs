//! Figures 6 and 7: SPECjbb sprint performance.
//!
//! * Fig. 6 — RE-Batt, the four strategies × {Min, Med, Max} availability
//!   × {10, 15, 30, 60 min} burst durations, normalized to Normal.
//! * Fig. 7 — the Hybrid strategy across the four Table I power
//!   configurations, same grid.

use crate::common::{cfg, print_speedup_blocks, run_batch, RunOpts, DURATIONS_MIN};
use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::pmk::Strategy;
use gs_workload::apps::Application;

pub fn fig6(opts: &RunOpts) {
    let series: Vec<String> = Strategy::SPRINTING.iter().map(|s| s.to_string()).collect();
    let mut blocks = Vec::new();
    for mins in DURATIONS_MIN {
        let mut configs = Vec::new();
        for avail in AvailabilityLevel::ALL {
            for strat in Strategy::SPRINTING {
                configs.push(cfg(
                    Application::SpecJbb,
                    GreenConfig::re_batt(),
                    strat,
                    avail,
                    mins,
                    12,
                    opts,
                ));
            }
        }
        let outs = run_batch(configs, opts);
        let rows: Vec<Vec<f64>> = outs
            .chunks(Strategy::SPRINTING.len())
            .map(|row| row.iter().map(|o| o.speedup_vs_normal).collect())
            .collect();
        blocks.push((format!("{mins} Mins"), rows));
    }
    print_speedup_blocks(
        "Figure 6: SPECjbb speedup over Normal (RE-Batt)",
        &series,
        &blocks,
        &["Min", "Med", "Max"],
    );
}

pub fn fig7(opts: &RunOpts) {
    let configs4 = GreenConfig::table1();
    let series: Vec<String> = configs4.iter().map(|c| c.name.to_string()).collect();
    let mut blocks = Vec::new();
    for mins in DURATIONS_MIN {
        let mut configs = Vec::new();
        for avail in AvailabilityLevel::ALL {
            for green in configs4.clone() {
                configs.push(cfg(
                    Application::SpecJbb,
                    green,
                    Strategy::Hybrid,
                    avail,
                    mins,
                    12,
                    opts,
                ));
            }
        }
        let outs = run_batch(configs, opts);
        let rows: Vec<Vec<f64>> = outs
            .chunks(configs4.len())
            .map(|row| row.iter().map(|o| o.speedup_vs_normal).collect())
            .collect();
        blocks.push((format!("{mins} Mins"), rows));
    }
    print_speedup_blocks(
        "Figure 7: SPECjbb speedup under different power configurations (Hybrid)",
        &series,
        &blocks,
        &["Min", "Med", "Max"],
    );
}
