//! Figure 10: the impact of workload burst intensity (SPECjbb).
//!
//! * (a) — Hybrid, RE-SBatt, medium availability: speedup for burst
//!   intensities Int ∈ {12, 10, 9, 7} across the four durations.
//! * (b) — all four strategies at Int = 9, minimum availability, 10 min.

use crate::common::{cfg, run_batch, RunOpts, DURATIONS_MIN};
use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::pmk::Strategy;
use gs_workload::apps::Application;

const INTENSITIES: [u8; 4] = [12, 10, 9, 7];

pub fn fig10a(opts: &RunOpts) {
    let mut configs = Vec::new();
    for mins in DURATIONS_MIN {
        for k in INTENSITIES {
            configs.push(cfg(
                Application::SpecJbb,
                GreenConfig::re_sbatt(),
                Strategy::Hybrid,
                AvailabilityLevel::Medium,
                mins,
                k,
                opts,
            ));
        }
    }
    let outs = run_batch(configs, opts);
    println!("\n=== Figure 10a: burst-intensity impact (SPECjbb, Hybrid, RE-SBatt, Med) ===");
    print!("{:<18}", "duration");
    for k in INTENSITIES {
        print!("{:>10}", format!("Int={k}"));
    }
    println!();
    for (i, mins) in DURATIONS_MIN.iter().enumerate() {
        print!("{:<18}", format!("{mins} Mins"));
        for j in 0..INTENSITIES.len() {
            print!(
                "{:>10.2}",
                outs[i * INTENSITIES.len() + j].speedup_vs_normal
            );
        }
        println!();
    }
}

pub fn fig10b(opts: &RunOpts) {
    let configs: Vec<_> = Strategy::SPRINTING
        .into_iter()
        .map(|strat| {
            cfg(
                Application::SpecJbb,
                GreenConfig::re_sbatt(),
                strat,
                AvailabilityLevel::Minimum,
                10,
                9,
                opts,
            )
        })
        .collect();
    let outs = run_batch(configs, opts);
    println!("\n=== Figure 10b: strategies at Int=9, minimum availability, 10-minute burst ===");
    for (strat, out) in Strategy::SPRINTING.iter().zip(&outs) {
        println!("{:<10} {:>8.2}", strat.to_string(), out.speedup_vs_normal);
    }
}
