//! Tables I and II of the paper, regenerated from the implementation's
//! own constants (so drift between code and documentation is impossible).

use greensprint::config::GreenConfig;
use gs_cluster::ServerSetting;
use gs_workload::apps::Application;

/// Table I: options for green provision.
pub fn table1() {
    println!("\n=== Table I: Options for green provision ===");
    println!(
        "{:<12} {:>12} {:>22} {:>14}",
        "Config", "RE", "Batt. (server level)", "Peak RE (W)"
    );
    for c in GreenConfig::table1() {
        let pct = c.green_servers * 10; // of the 10-server prototype
        let batt = if c.battery_ah > 0.0 {
            format!("{:.1}Ah", c.battery_ah)
        } else {
            "0".to_string()
        };
        println!(
            "{:<12} {:>11}% {:>22} {:>14.2}",
            c.name,
            pct,
            batt,
            c.pv_array().peak_ac_watts()
        );
    }
}

/// Table II: workload description, plus the calibrated model's capacity
/// and power anchors for each application.
pub fn table2() {
    println!("\n=== Table II: Workload description ===");
    println!(
        "{:<12} {:>8} {:>34} {:>12} {:>12}",
        "Workload", "Memory", "Performance metric", "Peak W", "Max speedup"
    );
    for app in Application::ALL {
        let p = app.profile();
        let metric = format!(
            "{} ({:.0}%-ile {:.0}ms constrained)",
            p.metric,
            p.slo_percentile * 100.0,
            p.slo_deadline_s * 1e3
        );
        println!(
            "{:<12} {:>6}GB {:>34} {:>12.0} {:>11.2}x",
            p.name,
            p.memory_gb,
            metric,
            p.load_power_w(ServerSetting::max_sprint()),
            p.max_speedup()
        );
    }
}
