//! Figures 8 and 9: Web-Search and Memcached under the RE-SBatt
//! configuration, four strategies × availability × burst duration.

use crate::common::{cfg, print_speedup_blocks, run_batch, RunOpts, DURATIONS_MIN};
use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::pmk::Strategy;
use gs_workload::apps::Application;

fn strategy_grid(app: Application, title: &str, opts: &RunOpts) {
    let series: Vec<String> = Strategy::SPRINTING.iter().map(|s| s.to_string()).collect();
    let mut blocks = Vec::new();
    for mins in DURATIONS_MIN {
        let mut configs = Vec::new();
        for avail in AvailabilityLevel::ALL {
            for strat in Strategy::SPRINTING {
                configs.push(cfg(
                    app,
                    GreenConfig::re_sbatt(),
                    strat,
                    avail,
                    mins,
                    12,
                    opts,
                ));
            }
        }
        let outs = run_batch(configs, opts);
        let rows: Vec<Vec<f64>> = outs
            .chunks(Strategy::SPRINTING.len())
            .map(|row| row.iter().map(|o| o.speedup_vs_normal).collect())
            .collect();
        blocks.push((format!("{mins} Mins"), rows));
    }
    print_speedup_blocks(title, &series, &blocks, &["Min", "Med", "Max"]);
}

pub fn fig8(opts: &RunOpts) {
    strategy_grid(
        Application::WebSearch,
        "Figure 8: Web-Search speedup over Normal (RE-SBatt)",
        opts,
    );
}

pub fn fig9(opts: &RunOpts) {
    strategy_grid(
        Application::Memcached,
        "Figure 9: Memcached speedup over Normal (RE-SBatt)",
        opts,
    );
}
