//! Extension experiments beyond the paper's figures: the multi-day
//! campaign (measured sprint-hours feeding the TCO model) and the
//! full-cluster view with grid-side sub-optimal sprinting.

use crate::common::RunOpts;
use greensprint::campaign::{run_campaign, CampaignConfig};
use greensprint::cluster_view::{run_cluster, GridSprintPolicy};
use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::engine::EngineConfig;
use greensprint::pmk::Strategy;
use gs_sim::SimDuration;
use gs_tco::TcoParams;
use gs_workload::apps::Application;

/// Multi-day diurnal campaign: sprint hours, gain, and the TCO verdict.
pub fn campaign(opts: &RunOpts) {
    println!("\n=== Campaign: 3 days of diurnal operation (SPECjbb, RE-Batt, Hybrid) ===");
    let cfg = CampaignConfig {
        engine: EngineConfig {
            app: Application::SpecJbb,
            green: GreenConfig::re_batt(),
            strategy: Strategy::Hybrid,
            measurement: opts.measurement,
            seed: opts.seed,
            ..EngineConfig::default()
        },
        days: 3,
        spikes_per_day: 4,
        peak_intensity_cores: 12,
    };
    let out = run_campaign(&cfg);
    let tco = TcoParams::paper();
    println!("days simulated          : {}", out.days);
    println!(
        "sprint hours            : {:.1} (server-hours {:.1})",
        out.sprint_hours, out.sprint_server_hours
    );
    println!(
        "extrapolated            : {:.0} sprint hours/year",
        out.sprint_hours_per_year
    );
    println!("goodput vs Normal       : {:.2}x", out.goodput_vs_normal);
    println!(
        "renewable used          : {:.0} Wh ({:.0} Wh curtailed)",
        out.run.re_used_wh, out.run.curtailed_wh
    );
    println!("battery cycles          : {:.2}", out.run.battery_cycles);
    println!(
        "TCO: {:.0} h/yr vs {:.1} h/yr break-even -> POI {:+.0} $/KW/year",
        out.sprint_hours_per_year,
        tco.crossover_hours(),
        tco.poi(out.sprint_hours_per_year)
    );
}

/// The paper's exhaustive profiling pass, done the prototype's way: drive
/// each setting with the load generator on the request-level simulator
/// ("measure and collect the power demand … with a priori knowledge using
/// an exhaustive method on real servers") and compare the measurements
/// against the analytic `LoadPower`/capacity tables the controller uses.
pub fn profile(opts: &RunOpts) {
    use greensprint::profiler::ProfileTable;
    use gs_cluster::ServerSetting;
    use gs_workload::loadgen::{Driver, RateSchedule};

    println!("\n=== Exhaustive profiling: DES-measured vs analytic tables (SPECjbb) ===");
    println!(
        "{:<12} {:>12} {:>14} {:>11} {:>12} {:>12}",
        "setting", "analytic cap", "measured gput", "attainment", "table W", "measured W"
    );
    let app = Application::SpecJbb.profile();
    let table = ProfileTable::cached(Application::SpecJbb);
    let model = app.power_model();
    let driver = Driver::default();
    // The strategy axes the PMK actually walks.
    let mut settings = ServerSetting::parallel_axis();
    settings.extend(ServerSetting::pacing_axis());
    settings.push(ServerSetting::normal());
    settings.sort();
    settings.dedup();
    let mut worst_gap = 0.0_f64;
    for setting in settings {
        let e = table.get(setting);
        if e.slo_capacity <= 0.0 {
            continue;
        }
        let report = driver.run(
            &app,
            setting,
            &RateSchedule::Constant(e.slo_capacity),
            opts.seed,
        );
        let measured_w = model.power_w(setting, report.utilization);
        let table_w = e.load_power_w(e.slo_capacity);
        worst_gap = worst_gap.max((measured_w - table_w).abs() / table_w);
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>10.1}% {:>12.1} {:>12.1}",
            setting.to_string(),
            e.slo_capacity,
            report.goodput_rps,
            100.0 * report.goodput_rps / report.completed_rps.max(1e-9),
            table_w,
            measured_w
        );
    }
    println!(
        "# worst LoadPower gap between the planes: {:.1}%",
        worst_gap * 100.0
    );
}

/// The paper's §IV-E "Summary of Observations", each re-derived from
/// engine runs rather than asserted.
pub fn observations(opts: &RunOpts) {
    use greensprint::engine::Engine;
    let run = |green: GreenConfig, strategy, availability, mins| {
        Engine::new(EngineConfig {
            app: Application::SpecJbb,
            green,
            strategy,
            availability,
            burst_duration: SimDuration::from_mins(mins),
            measurement: opts.measurement,
            seed: opts.seed,
            ..EngineConfig::default()
        })
        .run()
    };

    println!("\n=== Paper §IV-E observations, measured ===");

    // (1) Sprinting significantly improves performance.
    let max = run(
        GreenConfig::re_batt(),
        Strategy::Hybrid,
        AvailabilityLevel::Maximum,
        10,
    );
    println!("(1) sprinting improves performance by activating more cores:");
    println!(
        "    max-availability sprint = {:.2}x over Normal",
        max.speedup_vs_normal
    );

    // (2) Renewable energy alone can support sprinting despite intermittency.
    let re_only = run(
        GreenConfig::re_only(),
        Strategy::Hybrid,
        AvailabilityLevel::Medium,
        30,
    );
    println!("(2) renewable energy alone supports sprinting despite intermittency:");
    println!(
        "    REOnly at medium availability = {:.2}x (no battery, no grid sprint)",
        re_only.speedup_vs_normal
    );

    // (3) Batteries alone help short bursts, not long ones.
    let b10 = run(
        GreenConfig::re_batt(),
        Strategy::Hybrid,
        AvailabilityLevel::Minimum,
        10,
    );
    let b60 = run(
        GreenConfig::re_batt(),
        Strategy::Hybrid,
        AvailabilityLevel::Minimum,
        60,
    );
    println!("(3) batteries alone carry short sprints only:");
    println!(
        "    10 min = {:.2}x vs 60 min = {:.2}x at zero renewable",
        b10.speedup_vs_normal, b60.speedup_vs_normal
    );

    // (4) Renewable supplements the battery.
    let med60 = run(
        GreenConfig::re_batt(),
        Strategy::Hybrid,
        AvailabilityLevel::Medium,
        60,
    );
    println!("(4) renewable supply reduces the battery-only penalty:");
    println!(
        "    60 min at medium availability = {:.2}x (vs {:.2}x battery-only)",
        med60.speedup_vs_normal, b60.speedup_vs_normal
    );

    // (5) Frequency scaling is the more energy-efficient knob on battery.
    let pac = run(
        GreenConfig::re_sbatt(),
        Strategy::Pacing,
        AvailabilityLevel::Medium,
        60,
    );
    let par = run(
        GreenConfig::re_sbatt(),
        Strategy::Parallel,
        AvailabilityLevel::Medium,
        60,
    );
    println!("(5) frequency scaling vs core scaling under constrained supply:");
    println!(
        "    Pacing {:.2}x vs Parallel {:.2}x (SPECjbb, RE-SBatt, Med/60)",
        pac.speedup_vs_normal, par.speedup_vs_normal
    );

    // (6) Sprinting raises renewable utilization.
    let util = |o: &greensprint::engine::BurstOutcome| {
        o.re_used_wh / (o.re_used_wh + o.curtailed_wh).max(1e-9)
    };
    let sprinting = run(
        GreenConfig::re_only(),
        Strategy::Hybrid,
        AvailabilityLevel::Medium,
        30,
    );
    let normal = run(
        GreenConfig::re_only(),
        Strategy::Normal,
        AvailabilityLevel::Medium,
        30,
    );
    println!("(6) sprinting raises renewable utilization:");
    println!(
        "    {:.0}% of available green energy used while sprinting vs {:.0}% at Normal",
        util(&sprinting) * 100.0,
        util(&normal) * 100.0
    );
}

/// Full-cluster view: green rack + grid-side sub-optimal sprinting.
pub fn cluster(opts: &RunOpts) {
    println!("\n=== Cluster view: 10 servers, grid side at its budgeted sprint (SPECjbb, Max availability) ===");
    let cfg = EngineConfig {
        app: Application::SpecJbb,
        green: GreenConfig::re_batt(),
        strategy: Strategy::Hybrid,
        availability: AvailabilityLevel::Maximum,
        burst_duration: SimDuration::from_mins(10),
        measurement: opts.measurement,
        seed: opts.seed,
        ..EngineConfig::default()
    };
    println!(
        "{:<12} {:>14} {:>12} {:>10} {:>16}",
        "grid policy", "grid setting", "grid W", "breaker", "cluster speedup"
    );
    for policy in [
        GridSprintPolicy::NormalOnly,
        GridSprintPolicy::SubOptimal,
        GridSprintPolicy::Reckless,
    ] {
        let out = run_cluster(&cfg, policy);
        println!(
            "{:<12} {:>14} {:>12.0} {:>10} {:>15.2}x",
            format!("{policy:?}"),
            out.grid_setting.to_string(),
            out.grid_power_w,
            if out.breaker_tripped { "TRIPPED" } else { "ok" },
            out.cluster_speedup_vs_normal
        );
    }
    println!("# the paper's discipline: 7 grid servers fit 12c@1.5GHz-class settings in 1000 W;");
    println!("# overloading instead trips the breaker and zeroes the grid side's contribution.");
}
