//! `experiments dump <path>` — machine-readable export of the evaluation:
//! every figure's speedup grid plus the TCO curve, as one JSON document,
//! for downstream plotting.

use crate::common::{cfg, run_batch, RunOpts, DURATIONS_MIN};
use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::pmk::Strategy;
use gs_tco::TcoParams;
use gs_workload::apps::Application;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    availability: &'static str,
    duration_min: u64,
    series: String,
    speedup: f64,
    slo_attainment: f64,
    battery_wh: f64,
    renewable_wh: f64,
}

#[derive(Serialize)]
struct Dump {
    seed: u64,
    measurement: String,
    fig6_specjbb_re_batt: Vec<Cell>,
    fig7_configs_hybrid: Vec<Cell>,
    fig8_websearch_re_sbatt: Vec<Cell>,
    fig9_memcached_re_sbatt: Vec<Cell>,
    fig10a_intensity: Vec<Cell>,
    fig11_tco: Vec<(f64, f64)>,
}

fn strategy_grid(app: Application, green: fn() -> GreenConfig, opts: &RunOpts) -> Vec<Cell> {
    let mut configs = Vec::new();
    let mut meta = Vec::new();
    for mins in DURATIONS_MIN {
        for avail in AvailabilityLevel::ALL {
            for strat in Strategy::SPRINTING {
                configs.push(cfg(app, green(), strat, avail, mins, 12, opts));
                meta.push((avail.label(), mins, strat.to_string()));
            }
        }
    }
    run_batch(configs, opts)
        .into_iter()
        .zip(meta)
        .map(|(o, (availability, duration_min, series))| Cell {
            availability,
            duration_min,
            series,
            speedup: o.speedup_vs_normal,
            slo_attainment: o.slo_attainment,
            battery_wh: o.battery_used_wh,
            renewable_wh: o.re_used_wh,
        })
        .collect()
}

pub fn run(path: &str, opts: &RunOpts) {
    let fig7 = {
        let mut configs = Vec::new();
        let mut meta = Vec::new();
        for mins in DURATIONS_MIN {
            for avail in AvailabilityLevel::ALL {
                for green in GreenConfig::table1() {
                    let name = green.name.clone();
                    configs.push(cfg(
                        Application::SpecJbb,
                        green,
                        Strategy::Hybrid,
                        avail,
                        mins,
                        12,
                        opts,
                    ));
                    meta.push((avail.label(), mins, name.to_string()));
                }
            }
        }
        run_batch(configs, opts)
            .into_iter()
            .zip(meta)
            .map(|(o, (availability, duration_min, series))| Cell {
                availability,
                duration_min,
                series,
                speedup: o.speedup_vs_normal,
                slo_attainment: o.slo_attainment,
                battery_wh: o.battery_used_wh,
                renewable_wh: o.re_used_wh,
            })
            .collect()
    };
    let fig10a = {
        let mut configs = Vec::new();
        let mut meta = Vec::new();
        for mins in DURATIONS_MIN {
            for k in [12u8, 10, 9, 7] {
                configs.push(cfg(
                    Application::SpecJbb,
                    GreenConfig::re_sbatt(),
                    Strategy::Hybrid,
                    AvailabilityLevel::Medium,
                    mins,
                    k,
                    opts,
                ));
                meta.push(("Med", mins, format!("Int={k}")));
            }
        }
        run_batch(configs, opts)
            .into_iter()
            .zip(meta)
            .map(|(o, (availability, duration_min, series))| Cell {
                availability,
                duration_min,
                series,
                speedup: o.speedup_vs_normal,
                slo_attainment: o.slo_attainment,
                battery_wh: o.battery_used_wh,
                renewable_wh: o.re_used_wh,
            })
            .collect()
    };
    let tco = TcoParams::paper();
    let dump = Dump {
        seed: opts.seed,
        measurement: format!("{:?}", opts.measurement),
        fig6_specjbb_re_batt: strategy_grid(Application::SpecJbb, GreenConfig::re_batt, opts),
        fig7_configs_hybrid: fig7,
        fig8_websearch_re_sbatt: strategy_grid(Application::WebSearch, GreenConfig::re_sbatt, opts),
        fig9_memcached_re_sbatt: strategy_grid(Application::Memcached, GreenConfig::re_sbatt, opts),
        fig10a_intensity: fig10a,
        fig11_tco: (0..=60).map(|h| (h as f64, tco.poi(h as f64))).collect(),
    };
    let json = serde_json::to_string_pretty(&dump).expect("dump serializes");
    std::fs::write(path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {} bytes of evaluation data to {path}", json.len());
}
