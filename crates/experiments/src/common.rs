//! Shared experiment plumbing: run matrices of burst configurations in
//! parallel and format figure-style tables.

use crossbeam::thread;
use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::engine::{BurstOutcome, Engine, EngineConfig, MeasurementMode};
use greensprint::pmk::Strategy;
use gs_sim::SimDuration;
use gs_workload::apps::Application;

/// The burst durations of the evaluation (minutes).
pub const DURATIONS_MIN: [u64; 4] = [10, 15, 30, 60];

/// Global run options from the CLI.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Measurement plane: DES (default) or the fast analytic model.
    pub measurement: MeasurementMode,
    /// Master seed.
    pub seed: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            measurement: MeasurementMode::Des,
            seed: 7,
        }
    }
}

/// A single cell of a figure: the full engine configuration.
pub fn cfg(
    app: Application,
    green: GreenConfig,
    strategy: Strategy,
    availability: AvailabilityLevel,
    duration_min: u64,
    intensity: u8,
    opts: &RunOpts,
) -> EngineConfig {
    EngineConfig {
        app,
        green,
        strategy,
        availability,
        burst_duration: SimDuration::from_mins(duration_min),
        burst_intensity_cores: intensity,
        measurement: opts.measurement,
        seed: opts.seed,
        ..EngineConfig::default()
    }
}

/// Run a batch of configurations across threads, preserving order.
pub fn run_batch(configs: Vec<EngineConfig>) -> Vec<BurstOutcome> {
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(configs.len().max(1));
    let mut results: Vec<Option<BurstOutcome>> = (0..configs.len()).map(|_| None).collect();
    let jobs: Vec<(usize, EngineConfig)> = configs.into_iter().enumerate().collect();
    let chunk = jobs.len().div_ceil(n_workers);
    thread::scope(|s| {
        let mut handles = Vec::new();
        for part in jobs.chunks(chunk) {
            let part = part.to_vec();
            handles.push(s.spawn(move |_| {
                part.into_iter()
                    .map(|(i, c)| (i, Engine::new(c).run()))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            for (i, out) in h.join().expect("experiment worker panicked") {
                results[i] = Some(out);
            }
        }
    })
    .expect("experiment scope panicked");
    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// Render a series as a one-line Unicode sparkline (▁▂▃▄▅▆▇█), scaled to
/// its own maximum; used under the Fig. 1/5 tables so the shapes read at
/// a glance in a terminal.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    if values.is_empty() || !max.is_finite() {
        return String::new();
    }
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Print a speedup table: rows = availability levels, columns = series
/// (strategies or configurations), one block per burst duration — the
/// layout of paper Figs. 6–9.
pub fn print_speedup_blocks(
    title: &str,
    series: &[String],
    blocks: &[(String, Vec<Vec<f64>>)], // (block label, [row][col] speedups)
    row_labels: &[&str],
) {
    println!("\n=== {title} ===");
    for (label, rows) in blocks {
        println!("\n--- {label} ---");
        print!("{:<6}", "");
        for s in series {
            print!("{s:>10}");
        }
        println!();
        for (r, row) in rows.iter().enumerate() {
            print!("{:<6}", row_labels[r]);
            for v in row {
                print!("{v:>10.2}");
            }
            println!();
        }
    }
}
