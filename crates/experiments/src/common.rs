//! Shared experiment plumbing: run matrices of burst configurations
//! through the deterministic sweep executor and format figure-style
//! tables.

use greensprint::config::{AvailabilityLevel, GreenConfig};
use greensprint::engine::{BurstOutcome, EngineConfig, MeasurementMode};
use greensprint::pmk::Strategy;
use greensprint::sweep::{default_jobs, run_sweep, SweepOutcome, SweepPoint};
use gs_sim::SimDuration;
use gs_workload::apps::Application;

/// The burst durations of the evaluation (minutes).
pub const DURATIONS_MIN: [u64; 4] = [10, 15, 30, 60];

/// Global run options from the CLI.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Measurement plane: DES (default) or the fast analytic model.
    pub measurement: MeasurementMode,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for figure grids (never changes the numbers, only
    /// the wall-clock).
    pub jobs: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            measurement: MeasurementMode::Des,
            seed: 7,
            jobs: default_jobs(),
        }
    }
}

/// A single cell of a figure: the full engine configuration.
pub fn cfg(
    app: Application,
    green: GreenConfig,
    strategy: Strategy,
    availability: AvailabilityLevel,
    duration_min: u64,
    intensity: u8,
    opts: &RunOpts,
) -> EngineConfig {
    EngineConfig {
        app,
        green,
        strategy,
        availability,
        burst_duration: SimDuration::from_mins(duration_min),
        burst_intensity_cores: intensity,
        measurement: opts.measurement,
        seed: opts.seed,
        ..EngineConfig::default()
    }
}

/// Run a batch of burst configurations through the sweep executor,
/// preserving order. Every cell is re-seeded from `(opts.seed, index)`,
/// so results are identical whatever `opts.jobs` is.
pub fn run_batch(configs: Vec<EngineConfig>, opts: &RunOpts) -> Vec<BurstOutcome> {
    let points = configs
        .into_iter()
        .enumerate()
        .map(|(i, c)| SweepPoint::burst(format!("cell{i}"), c))
        .collect();
    run_sweep(points, opts.seed, opts.jobs)
        .into_iter()
        .map(|r| match r.outcome {
            SweepOutcome::Burst(b) => b,
            SweepOutcome::Campaign(_) => unreachable!("run_batch submits only bursts"),
            SweepOutcome::Failed(_) => unreachable!("run_sweep is unsupervised; tasks panic"),
        })
        .collect()
}

/// Render a series as a one-line Unicode sparkline (▁▂▃▄▅▆▇█), scaled to
/// its own maximum; used under the Fig. 1/5 tables so the shapes read at
/// a glance in a terminal.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    if values.is_empty() || !max.is_finite() {
        return String::new();
    }
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Print a speedup table: rows = availability levels, columns = series
/// (strategies or configurations), one block per burst duration — the
/// layout of paper Figs. 6–9.
pub fn print_speedup_blocks(
    title: &str,
    series: &[String],
    blocks: &[(String, Vec<Vec<f64>>)], // (block label, [row][col] speedups)
    row_labels: &[&str],
) {
    println!("\n=== {title} ===");
    for (label, rows) in blocks {
        println!("\n--- {label} ---");
        print!("{:<6}", "");
        for s in series {
            print!("{s:>10}");
        }
        println!();
        for (r, row) in rows.iter().enumerate() {
            print!("{:<6}", row_labels[r]);
            for v in row {
                print!("{v:>10.2}");
            }
            println!();
        }
    }
}
