//! Figure 11: profit-over-investment of the additional green provisioning
//! (PV + battery + PCM) as a function of yearly sprint hours.

use gs_tco::TcoParams;

pub fn run() {
    let tco = TcoParams::paper();
    println!("\n=== Figure 11: POI with additional renewable, battery and cooling investment ===");
    println!(
        "{:>26} {:>26}",
        "yearly sprint hours", "benefit ($/KW/year)"
    );
    for hours in [12.0, 24.0, 36.0] {
        println!("{:>26.0} {:>26.1}", hours, tco.poi(hours));
    }
    println!(
        "# cross-over (profitable with sprinting) at {:.1} hours/year; yearly green capex {:.1} $/KW",
        tco.crossover_hours(),
        tco.yearly_capex_per_kw()
    );
}
