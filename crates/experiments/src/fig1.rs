//! Figure 1: the motivation plot — a Google-style diurnal workload with
//! load spikes, against the grid power budget, the power demand of
//! sprinting, and a solar production curve, all normalized to grid power.

use crate::common::sparkline;
use gs_power::solar::{SolarTrace, WeatherModel};
use gs_sim::{SimRng, SimTime};
use gs_workload::arrivals::DiurnalTrace;

/// Normalized sprinting power when the whole cluster sprints: the paper's
/// saturated cluster draws 1550 W against a 1000 W grid budget.
const SPRINT_OVER_GRID: f64 = 1.55;

pub fn run(seed: u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let workload = DiurnalTrace::generate(1, 4, &mut rng);
    let solar = SolarTrace::generate(1, &WeatherModel::default(), &mut rng);
    println!(
        "\n=== Figure 1: workload pattern and scaled power demand (normalized to grid power) ==="
    );
    println!(
        "{:>5} {:>18} {:>12} {:>16} {:>17}",
        "hour", "workload_intensity", "grid_power", "sprinting_power", "renewable_power"
    );
    // One sample per half hour over the day.
    for half_hour in 0..48 {
        let t = SimTime::from_mins(half_hour * 30);
        let load = workload.at(t);
        // Sprinting power demand tracks the workload: the cluster sprints
        // in proportion to how much of it is saturated.
        let sprint = 1.0 + (SPRINT_OVER_GRID - 1.0) * load;
        let re = solar.at(t) * 0.75; // on-site array scaled to ~75 % of grid
        println!(
            "{:>5.1} {:>18.3} {:>12.3} {:>16.3} {:>17.3}",
            t.as_hours_f64(),
            load,
            1.0,
            sprint,
            re
        );
    }
    let hourly = |f: &dyn Fn(SimTime) -> f64| -> Vec<f64> {
        (0..48).map(|hh| f(SimTime::from_mins(hh * 30))).collect()
    };
    println!("# workload  {}", sparkline(&hourly(&|t| workload.at(t))));
    println!("# renewable {}", sparkline(&hourly(&|t| solar.at(t))));
    let peak = workload.samples().iter().cloned().fold(0.0_f64, f64::max);
    println!(
        "# peak workload intensity {:.2}; sprinting demand exceeds the grid budget whenever intensity > 0 (red ovals of the paper)",
        peak
    );
}
