//! `experiments` — regenerates every table and figure of the GreenSprint
//! evaluation (IPDPS 2018).
//!
//! ```text
//! experiments <target> [--analytic] [--seed N] [--jobs N]
//!
//! targets: table1 table2 fig1 fig5 fig6 fig7 fig8 fig9 fig10a fig10b fig11
//!          campaign cluster observations profile dump [file] all
//!
//! --analytic   use the closed-form queueing model instead of the
//!              request-level DES (deterministic and much faster)
//! --seed N     master seed (default 7)
//! --jobs N     worker threads for figure grids (default: all cores;
//!              results are identical for any N)
//! ```

mod common;
mod dump;
mod extras;
mod fig1;
mod fig10;
mod fig11;
mod fig5;
mod fig67;
mod fig89;
mod tables;

use common::RunOpts;
use greensprint::engine::MeasurementMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<String> = None;
    let mut opts = RunOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--analytic" => opts.measurement = MeasurementMode::Analytic,
            "--des" => opts.measurement = MeasurementMode::Des,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                opts.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| usage("--jobs needs a value"));
                opts.jobs = v
                    .parse()
                    .unwrap_or_else(|_| usage("--jobs needs an integer"));
                if opts.jobs == 0 {
                    usage("--jobs must be at least 1");
                }
            }
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_string());
            }
            other if target.as_deref() == Some("dump") => {
                // second positional arg: output path
                target = Some(format!("dump:{other}"));
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    let target = target.unwrap_or_else(|| usage("missing target"));
    run_target(&target, &opts);
}

fn run_target(target: &str, opts: &RunOpts) {
    match target {
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "fig1" => fig1::run(opts.seed),
        "fig5" => fig5::run(opts),
        "fig6" => fig67::fig6(opts),
        "fig7" => fig67::fig7(opts),
        "fig8" => fig89::fig8(opts),
        "fig9" => fig89::fig9(opts),
        "fig10a" => fig10::fig10a(opts),
        "fig10b" => fig10::fig10b(opts),
        "fig11" => fig11::run(),
        "campaign" => extras::campaign(opts),
        "observations" => extras::observations(opts),
        "profile" => extras::profile(opts),
        t if t.starts_with("dump") => {
            let path = t.strip_prefix("dump:").unwrap_or("evaluation.json");
            dump::run(path, opts);
        }
        "cluster" => extras::cluster(opts),
        "all" => {
            for t in [
                "table1",
                "table2",
                "fig1",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10a",
                "fig10b",
                "fig11",
                "campaign",
                "cluster",
                "observations",
                "profile",
            ] {
                run_target(t, opts);
            }
        }
        other => usage(&format!("unknown target: {other}")),
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: experiments <table1|table2|fig1|fig5|fig6|fig7|fig8|fig9|fig10a|fig10b|fig11|campaign|cluster|observations|profile|dump [file]|all> [--analytic] [--seed N] [--jobs N]"
    );
    std::process::exit(2);
}
