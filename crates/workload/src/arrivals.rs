//! Open-loop arrival processes.
//!
//! Two generators feed the evaluation:
//!
//! * [`BurstPattern`] — the controlled bursts of §IV: the cluster is
//!   saturated for 10/15/30/60 minutes at an intensity `Int=k`, defined by
//!   the paper as "the maximal processing capability of running workloads
//!   on *k* cores at 2.0 GHz";
//! * [`DiurnalTrace`] — a Google-datacenter-style diurnal load curve
//!   (paper Fig. 1) with a configurable number of load spikes, used by the
//!   motivation figure and the long-horizon examples.

use crate::apps::AppProfile;
use gs_cluster::{ServerSetting, NUM_FREQ_LEVELS};
use gs_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A square workload burst: `Int=k` intensity for a fixed duration, with
/// a light background load outside the burst.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BurstPattern {
    /// Offered per-server rate during the burst (req/s).
    pub burst_rps: f64,
    /// Offered per-server rate outside the burst (req/s).
    pub background_rps: f64,
    /// Burst start.
    pub start: SimTime,
    /// Burst end.
    pub end: SimTime,
}

impl BurstPattern {
    /// Build the paper's `Int=k` burst for an application: the offered
    /// rate equals the SLO capacity of `k` cores at 2.0 GHz.
    pub fn intensity(app: &AppProfile, k_cores: u8, start: SimTime, end: SimTime) -> BurstPattern {
        assert!(end > start, "burst must have positive duration");
        let setting = ServerSetting::new(k_cores, (NUM_FREQ_LEVELS - 1) as u8);
        let burst_rps = app.slo_capacity(setting);
        BurstPattern {
            burst_rps,
            // Outside bursts interactive services idle at a small fraction
            // of Normal capacity.
            background_rps: 0.2 * app.slo_capacity(ServerSetting::normal()),
            start,
            end,
        }
    }

    /// Offered per-server rate at time `t`.
    pub fn offered_rps(&self, t: SimTime) -> f64 {
        if t >= self.start && t < self.end {
            self.burst_rps
        } else {
            self.background_rps
        }
    }

    /// True while the burst is active.
    pub fn in_burst(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// A normalized (peak = 1.0) diurnal workload-intensity curve at
/// one-minute resolution, shaped like the Google trace of paper Fig. 1:
/// a low overnight trough, a broad daytime plateau, and several sharp
/// load spikes of varying intensity and duration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiurnalTrace {
    samples: Vec<f64>,
}

impl DiurnalTrace {
    /// Generate a `days`-long trace with `spikes_per_day` bursts at random
    /// daytime positions. Reproducible by seed.
    pub fn generate(days: u32, spikes_per_day: u32, rng: &mut SimRng) -> Self {
        let n = days as usize * 24 * 60;
        let mut samples = vec![0.0; n];
        // Base diurnal shape: trough at 4 am, plateau 9 am – 9 pm.
        for (i, s) in samples.iter_mut().enumerate() {
            let h = (i as f64 / 60.0) % 24.0;
            let phase = (h - 4.0).rem_euclid(24.0) / 24.0 * std::f64::consts::TAU;
            let base = 0.45 - 0.25 * phase.cos(); // 0.2 .. 0.7
            *s = base + rng.normal(0.0, 0.01);
        }
        // Spikes: breaking-news / flash-sale style bursts.
        for day in 0..days {
            for _ in 0..spikes_per_day {
                let hour = rng.uniform_range(7.0, 23.0);
                let center = day as usize * 24 * 60 + (hour * 60.0) as usize;
                let half_width = rng.uniform_range(10.0, 45.0) as usize; // minutes
                let peak = rng.uniform_range(0.5, 0.8);
                let lo = center.saturating_sub(half_width);
                let hi = (center + half_width).min(n - 1);
                for (j, s) in samples.iter_mut().enumerate().take(hi + 1).skip(lo) {
                    let d = (j as f64 - center as f64) / half_width as f64;
                    *s += peak * (-2.5 * d * d).exp();
                }
            }
        }
        for s in &mut samples {
            *s = s.clamp(0.05, 1.0);
        }
        DiurnalTrace { samples }
    }

    /// Number of minute samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Normalized intensity in `[0, 1]` at time `t` (cyclic).
    pub fn at(&self, t: SimTime) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = (t.as_secs() / 60) as usize % self.samples.len();
        self.samples[idx]
    }

    /// Raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Offered per-server rate at `t` when the cluster's peak demand is
    /// `peak_rps` per server.
    pub fn offered_rps(&self, t: SimTime, peak_rps: f64) -> f64 {
        self.at(t) * peak_rps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::Application;

    #[test]
    fn intensity_burst_rate_matches_k_core_capacity() {
        let app = Application::SpecJbb.profile();
        let b = BurstPattern::intensity(&app, 9, SimTime::from_mins(5), SimTime::from_mins(15));
        let expect = app.slo_capacity(ServerSetting::new(9, 8));
        assert!((b.burst_rps - expect).abs() < 1e-9);
        // Int=12 is the full sprint capacity; Int=7 lower.
        let b12 = BurstPattern::intensity(&app, 12, SimTime::ZERO, SimTime::from_mins(1));
        let b7 = BurstPattern::intensity(&app, 7, SimTime::ZERO, SimTime::from_mins(1));
        assert!(b12.burst_rps > b.burst_rps && b.burst_rps > b7.burst_rps);
    }

    #[test]
    fn burst_window_semantics() {
        let app = Application::Memcached.profile();
        let b = BurstPattern::intensity(&app, 12, SimTime::from_mins(10), SimTime::from_mins(20));
        assert!(!b.in_burst(SimTime::from_mins(9)));
        assert!(b.in_burst(SimTime::from_mins(10)));
        assert!(!b.in_burst(SimTime::from_mins(20)));
        assert_eq!(b.offered_rps(SimTime::from_mins(15)), b.burst_rps);
        assert_eq!(b.offered_rps(SimTime::from_mins(25)), b.background_rps);
        assert!(b.background_rps < b.burst_rps);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn rejects_empty_burst() {
        let app = Application::SpecJbb.profile();
        let _ = BurstPattern::intensity(&app, 12, SimTime::from_mins(5), SimTime::from_mins(5));
    }

    #[test]
    fn diurnal_trace_shape() {
        let mut rng = SimRng::seed_from_u64(13);
        let t = DiurnalTrace::generate(1, 4, &mut rng);
        assert_eq!(t.len(), 24 * 60);
        assert!(t.samples().iter().all(|&v| (0.05..=1.0).contains(&v)));
        // Overnight trough is lower than the daytime plateau.
        let night = t.at(SimTime::from_hours(4));
        let day = t.at(SimTime::from_hours(14));
        assert!(night < day, "night={night} day={day}");
        // Spikes push some samples well above the base curve.
        let max = t.samples().iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.8, "max={max}");
    }

    #[test]
    fn diurnal_trace_reproducible() {
        let a = DiurnalTrace::generate(1, 3, &mut SimRng::seed_from_u64(1));
        let b = DiurnalTrace::generate(1, 3, &mut SimRng::seed_from_u64(1));
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn diurnal_offered_rate_scales() {
        let t = DiurnalTrace::generate(1, 0, &mut SimRng::seed_from_u64(2));
        let at = SimTime::from_hours(12);
        assert!((t.offered_rps(at, 100.0) - 100.0 * t.at(at)).abs() < 1e-12);
    }
}
