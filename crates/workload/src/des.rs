//! Request-level discrete-event simulation of one server.
//!
//! The measurement plane of the reproduction: Poisson arrivals are thinned
//! by admission control (interactive clusters shed load at the balancer to
//! protect tail latency), admitted requests queue FIFO for the active
//! cores, and each completion's latency is checked against the SLO.
//!
//! The simulator is *persistent*: in-flight requests survive epoch
//! boundaries, so consecutive epochs with different sprint settings see
//! realistic carry-over (no preemption — when the core count drops,
//! running requests finish and no new ones start until occupancy falls
//! below the new limit).

use crate::apps::AppProfile;
use crate::metrics::EpochPerf;
use gs_cluster::ServerSetting;
use gs_sim::{EventQueue, ReservoirPercentiles, SimDuration, SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Maximum queued requests before overload shedding (beyond admission).
const QUEUE_CAP: usize = 50_000;

/// Latency reservoir size per epoch.
const LATENCY_RESERVOIR: usize = 20_000;

/// The set of in-service requests, popped in completion order.
///
/// The pop order contract is min `(done, arrival FIFO)`. Requests enter
/// service strictly in arrival order (`ServerSimWith::fill_cores` pops the
/// FIFO wait queue), so a queue that breaks completion-time ties by
/// *insertion* order (the calendar queue's sequence numbers) produces the
/// identical pop sequence to one that breaks ties by *arrival time* (the
/// original `BinaryHeap<Reverse<(done, arrived)>>`). Both implementations
/// live here so property tests can assert that equivalence end to end.
pub trait CompletionQueue: Default + std::fmt::Debug {
    /// Add a request completing at `done` that arrived at `arrived`.
    fn push(&mut self, done: SimTime, arrived: SimTime);
    /// Earliest pending completion time.
    fn peek_done(&self) -> Option<SimTime>;
    /// Remove and return the earliest `(done, arrived)` pair.
    fn pop(&mut self) -> Option<(SimTime, SimTime)>;
    /// Requests currently in service.
    fn len(&self) -> usize;
    /// True if no requests are in service.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drop all in-service requests.
    fn clear(&mut self);
}

/// Production completion set: bucketed calendar queue (see [`EventQueue`]).
#[derive(Default)]
pub struct CalendarCompletions(EventQueue<SimTime>);

impl std::fmt::Debug for CalendarCompletions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarCompletions")
            .field("len", &self.0.len())
            .finish()
    }
}

impl CompletionQueue for CalendarCompletions {
    fn push(&mut self, done: SimTime, arrived: SimTime) {
        self.0.schedule(done, arrived);
    }
    fn peek_done(&self) -> Option<SimTime> {
        self.0.peek_time()
    }
    fn pop(&mut self) -> Option<(SimTime, SimTime)> {
        self.0.pop()
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn clear(&mut self) {
        self.0.clear();
    }
}

/// Reference completion set: the original binary heap ordered by
/// `(done, arrived)`, kept for equivalence property tests.
#[derive(Default, Debug)]
pub struct HeapCompletions(BinaryHeap<Reverse<(SimTime, SimTime)>>);

impl CompletionQueue for HeapCompletions {
    fn push(&mut self, done: SimTime, arrived: SimTime) {
        self.0.push(Reverse((done, arrived)));
    }
    fn peek_done(&self) -> Option<SimTime> {
        self.0.peek().map(|Reverse((t, _))| *t)
    }
    fn pop(&mut self) -> Option<(SimTime, SimTime)> {
        self.0.pop().map(|Reverse(pair)| pair)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn clear(&mut self) {
        self.0.clear();
    }
}

/// A single simulated server, generic over the in-service container.
#[derive(Debug)]
pub struct ServerSimWith<Q: CompletionQueue> {
    rng: SimRng,
    now: SimTime,
    /// Arrival timestamps of queued requests (FIFO).
    queue: VecDeque<SimTime>,
    /// (completion time, arrival time) of in-service requests.
    in_service: Q,
}

/// A single simulated server (production calendar-queue configuration).
pub type ServerSim = ServerSimWith<CalendarCompletions>;

/// Heap-backed reference simulator for equivalence property tests.
pub type ReferenceServerSim = ServerSimWith<HeapCompletions>;

impl<Q: CompletionQueue> ServerSimWith<Q> {
    /// Create a server simulator with its own random stream.
    pub fn new(rng: SimRng) -> Self {
        ServerSimWith {
            rng,
            now: SimTime::ZERO,
            queue: VecDeque::new(),
            in_service: Q::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Requests currently queued or in service.
    pub fn backlog(&self) -> usize {
        self.queue.len() + self.in_service.len()
    }

    /// Advance one scheduling epoch at fixed knobs and offered load.
    ///
    /// * `offered_rps` — open-loop Poisson arrival rate;
    /// * `admit_rps` — admission-controlled rate (requests beyond it are
    ///   shed at the balancer); pass `f64::INFINITY` to admit everything;
    /// * the sprint `setting` fixes core count and service speed.
    pub fn advance_epoch(
        &mut self,
        app: &AppProfile,
        setting: ServerSetting,
        offered_rps: f64,
        admit_rps: f64,
        epoch: SimDuration,
    ) -> EpochPerf {
        let end = self.now + epoch;
        let cores = setting.cores as usize;
        let admit_p = if offered_rps <= 0.0 {
            0.0
        } else {
            (admit_rps / offered_rps).clamp(0.0, 1.0)
        };

        let mut offered = 0u64;
        let mut admitted = 0u64;
        let mut shed = 0u64;
        let mut completed = 0u64;
        let mut slo_met = 0u64;
        let mut latency_sum = 0.0;
        let mut latencies = ReservoirPercentiles::with_cap(LATENCY_RESERVOIR);
        let mut busy_core_secs = 0.0;

        // Start any queued work the (possibly increased) core budget allows.
        self.fill_cores(app, setting, cores);

        let mut next_arrival = if offered_rps > 0.0 {
            self.now + SimDuration::from_secs_f64(self.rng.exp(1.0 / offered_rps))
        } else {
            end + SimDuration::from_secs(1) // never fires
        };

        loop {
            let next_completion = self.in_service.peek_done();
            // The next event is the earlier of arrival and completion,
            // bounded by the epoch end.
            let next_event = match next_completion {
                Some(c) => next_arrival.min(c),
                None => next_arrival,
            };
            if next_event >= end {
                busy_core_secs += self.in_service.len() as f64 * (end - self.now).as_secs_f64();
                self.now = end;
                break;
            }
            busy_core_secs += self.in_service.len() as f64 * (next_event - self.now).as_secs_f64();
            self.now = next_event;

            if Some(next_event) == next_completion && next_event <= next_arrival {
                // Completion first (ties prefer completions: frees a core
                // before the simultaneous arrival is placed).
                let (done, arrived) = self.in_service.pop().expect("peeked above");
                debug_assert_eq!(done, next_event);
                let lat = (done - arrived).as_secs_f64();
                completed += 1;
                latency_sum += lat;
                latencies.record(lat);
                if lat <= app.slo_deadline_s {
                    slo_met += 1;
                }
                self.fill_cores(app, setting, cores);
            } else {
                // Arrival.
                offered += 1;
                if self.rng.chance(admit_p) && self.queue.len() < QUEUE_CAP {
                    admitted += 1;
                    self.queue.push_back(self.now);
                    self.fill_cores(app, setting, cores);
                } else {
                    shed += 1;
                }
                next_arrival =
                    self.now + SimDuration::from_secs_f64(self.rng.exp(1.0 / offered_rps));
            }
        }

        let secs = epoch.as_secs_f64();
        EpochPerf {
            offered_rps: offered as f64 / secs,
            admitted_rps: admitted as f64 / secs,
            completed_rps: completed as f64 / secs,
            goodput_rps: slo_met as f64 / secs,
            shed_rps: shed as f64 / secs,
            mean_latency_s: if completed > 0 {
                latency_sum / completed as f64
            } else {
                0.0
            },
            slo_percentile_latency_s: latencies.quantile(app.slo_percentile).unwrap_or(0.0),
            utilization: (busy_core_secs / (cores as f64 * secs)).clamp(0.0, 1.0),
        }
    }

    /// Move queued requests into service while cores are free.
    fn fill_cores(&mut self, app: &AppProfile, setting: ServerSetting, cores: usize) {
        while self.in_service.len() < cores {
            let Some(arrived) = self.queue.pop_front() else {
                break;
            };
            let service = app.sample_service_s(&mut self.rng, setting);
            let done = self.now + SimDuration::from_secs_f64(service);
            self.in_service.push(done, arrived);
        }
    }

    /// Drop all queued and in-flight work (burst teardown between
    /// independent experiments).
    pub fn drain(&mut self) {
        self.queue.clear();
        self.in_service.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::Application;

    fn sim(seed: u64) -> ServerSim {
        ServerSim::new(SimRng::seed_from_u64(seed))
    }

    #[test]
    fn light_load_completes_everything_within_slo() {
        let app = Application::SpecJbb.profile();
        let setting = ServerSetting::max_sprint();
        let mut s = sim(1);
        let cap = app.slo_capacity(setting);
        let perf = s.advance_epoch(
            &app,
            setting,
            cap * 0.3,
            f64::INFINITY,
            SimDuration::from_secs(120),
        );
        assert!(perf.completed_rps > 0.25 * cap);
        assert!(
            perf.slo_attainment() > 0.99,
            "attainment {}",
            perf.slo_attainment()
        );
        assert!(perf.shed_rps == 0.0);
        assert!(perf.utilization < 0.6);
    }

    #[test]
    fn admission_thinning_sheds_excess() {
        let app = Application::SpecJbb.profile();
        let setting = ServerSetting::normal();
        let mut s = sim(2);
        let cap = app.slo_capacity(setting);
        let perf = s.advance_epoch(&app, setting, cap * 3.0, cap, SimDuration::from_secs(120));
        // Roughly two thirds shed.
        let shed_frac = perf.shed_rps / perf.offered_rps;
        assert!((shed_frac - 2.0 / 3.0).abs() < 0.05, "shed {shed_frac}");
        // Admitted traffic still largely meets the SLO.
        assert!(
            perf.slo_attainment() > 0.95,
            "attainment {}",
            perf.slo_attainment()
        );
    }

    #[test]
    fn des_validates_analytic_slo_capacity() {
        // The DES run *at* the analytic SLO capacity should sit right at
        // the SLO boundary: attainment close to the percentile target.
        let app = Application::SpecJbb.profile();
        for setting in [ServerSetting::normal(), ServerSetting::max_sprint()] {
            let cap = app.slo_capacity(setting);
            let mut s = sim(3);
            let perf = s.advance_epoch(
                &app,
                setting,
                cap,
                f64::INFINITY,
                SimDuration::from_secs(600),
            );
            let met = perf.slo_attainment();
            assert!(
                met > app.slo_percentile - 0.035,
                "{setting}: attainment {met} far below {}",
                app.slo_percentile
            );
        }
    }

    #[test]
    fn saturation_throughput_matches_raw_capacity() {
        let app = Application::SpecJbb.profile();
        let setting = ServerSetting::normal();
        let raw = app.raw_capacity(setting);
        let mut s = sim(4);
        // Overload without admission: completions approach raw capacity.
        let perf = s.advance_epoch(
            &app,
            setting,
            raw * 2.0,
            f64::INFINITY,
            SimDuration::from_secs(300),
        );
        assert!(
            (perf.completed_rps - raw).abs() / raw < 0.05,
            "completed {} vs raw {raw}",
            perf.completed_rps
        );
        assert!(perf.utilization > 0.98);
        // And the SLO is devastated — the overload case the paper sprints
        // to avoid.
        assert!(perf.slo_attainment() < 0.6);
    }

    #[test]
    fn state_persists_across_epochs() {
        let app = Application::SpecJbb.profile();
        let setting = ServerSetting::normal();
        let mut s = sim(5);
        // Saturate briefly without admission control…
        s.advance_epoch(
            &app,
            setting,
            1000.0,
            f64::INFINITY,
            SimDuration::from_secs(5),
        );
        let backlog = s.backlog();
        assert!(backlog > 10, "backlog {backlog}");
        // …then the backlog drains in a zero-load epoch.
        let perf = s.advance_epoch(&app, setting, 0.0, 0.0, SimDuration::from_secs(60));
        assert!(perf.completed_rps > 0.0);
        assert!(s.backlog() < backlog);
        assert_eq!(s.now(), SimTime::from_secs(65));
    }

    #[test]
    fn core_count_reduction_is_non_preemptive() {
        let app = Application::SpecJbb.profile();
        let mut s = sim(6);
        s.advance_epoch(
            &app,
            ServerSetting::max_sprint(),
            500.0,
            f64::INFINITY,
            SimDuration::from_secs(2),
        );
        assert!(s.backlog() > 0);
        // Shrinking to 6 cores must not lose the in-flight requests.
        let before = s.backlog();
        let perf = s.advance_epoch(
            &app,
            ServerSetting::normal(),
            0.0,
            0.0,
            SimDuration::from_millis(10),
        );
        // Nothing shed, work conserved modulo completions.
        assert_eq!(perf.shed_rps, 0.0);
        assert!(s.backlog() <= before);
    }

    #[test]
    fn deterministic_given_seed() {
        let app = Application::Memcached.profile();
        let setting = ServerSetting::new(9, 4);
        let run = |seed| {
            let mut s = sim(seed);
            let p = s.advance_epoch(&app, setting, 800.0, 700.0, SimDuration::from_secs(30));
            (p.completed_rps, p.goodput_rps, p.mean_latency_s)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn drain_clears_state() {
        let app = Application::SpecJbb.profile();
        let mut s = sim(9);
        s.advance_epoch(
            &app,
            ServerSetting::normal(),
            1000.0,
            f64::INFINITY,
            SimDuration::from_secs(2),
        );
        s.drain();
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn empirical_service_distribution_replays_through_the_des() {
        use crate::dist::EmpiricalDist;
        // A bimodal service shape: 80 % cheap requests, 20 % ten times
        // heavier (a cache-hit/miss pattern a log-normal cannot express).
        let mut samples = vec![1.0_f64; 800];
        samples.extend(std::iter::repeat_n(10.0, 200));
        let dist = EmpiricalDist::from_samples(samples).unwrap();
        let app = Application::SpecJbb.profile().with_empirical_service(dist);
        // The profile's CV was rebuilt from the samples.
        assert!(app.service_cv > 1.0, "bimodal cv {}", app.service_cv);
        let setting = ServerSetting::max_sprint();
        let mut s = sim(11);
        let perf = s.advance_epoch(
            &app,
            setting,
            app.raw_capacity(setting) * 0.3,
            f64::INFINITY,
            SimDuration::from_secs(300),
        );
        assert!(perf.completed_rps > 0.0);
        // The mean latency at light load approaches the (scaled) mean
        // service time, whatever the shape.
        let mean_s = app.mean_service_s(setting);
        assert!(
            (perf.mean_latency_s - mean_s).abs() / mean_s < 0.25,
            "mean latency {} vs service mean {mean_s}",
            perf.mean_latency_s
        );
        // And the bimodal tail shows: the p99-ish latency is several times
        // the mean (log-normal at the default cv 0.32 would be ~2x).
        assert!(
            perf.slo_percentile_latency_s > 2.5 * perf.mean_latency_s,
            "p99 {} vs mean {}",
            perf.slo_percentile_latency_s,
            perf.mean_latency_s
        );
    }

    #[test]
    fn zero_offered_rate_is_quiet() {
        let app = Application::SpecJbb.profile();
        let mut s = sim(10);
        let perf = s.advance_epoch(
            &app,
            ServerSetting::normal(),
            0.0,
            100.0,
            SimDuration::from_secs(10),
        );
        assert_eq!(perf.offered_rps, 0.0);
        assert_eq!(perf.completed_rps, 0.0);
        assert_eq!(perf.utilization, 0.0);
    }
}
