//! Analytic queueing machinery.
//!
//! A server running an interactive application is modeled as a `c`-core
//! FIFO station with Poisson arrivals and log-normally distributed service
//! times (empirically, request service times in interactive services have
//! a coefficient of variation well below 1). The sojourn-time tail is
//! computed as
//!
//! `P(T > d) = E_S[ P(W > d − S) ]`
//!
//! where the waiting time `W` uses the M/M/c tail with the Allen–Cunneen
//! variability correction — exact for exponential service, a standard
//! approximation otherwise — and the expectation over the service time `S`
//! is evaluated by quantile quadrature of the log-normal.
//!
//! On top of that sits the **SLO-capacity solver**: the largest arrival
//! rate for which the `q`-percentile of sojourn time stays within the
//! deadline. This is the paper's performance metric (jops/ops/rps under a
//! latency constraint) and also what the PMK's profiling tables store.

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 over (0,1)).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Quantile of a log-normal with the given *distribution* mean and
/// coefficient of variation.
pub fn lognormal_quantile(mean: f64, cv: f64, p: f64) -> f64 {
    assert!(mean > 0.0, "lognormal mean must be positive");
    if cv <= 0.0 {
        return mean;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu + sigma2.sqrt() * inverse_normal_cdf(p)).exp()
}

/// Erlang-C: probability an arrival must wait in an M/M/c queue with
/// offered load `a = λ/μ` and `c` servers. Requires `a < c` (stability).
pub fn erlang_c(c: u32, a: f64) -> f64 {
    assert!(c >= 1, "need at least one server");
    if a <= 0.0 {
        return 0.0;
    }
    assert!(a < c as f64, "offered load must be below capacity");
    // Iteratively build the Erlang-B blocking probability, then convert.
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    let rho = a / c as f64;
    b / (1.0 - rho + rho * b)
}

/// Parameters of the per-server queueing station.
#[derive(Debug, Clone, Copy)]
pub struct Station {
    /// Parallel service slots (active cores).
    pub cores: u32,
    /// Mean service time per request (seconds).
    pub mean_service_s: f64,
    /// Coefficient of variation of service times.
    pub service_cv: f64,
}

/// Quadrature points for the expectation over the service time. Tail SLOs
/// (p99) need fine resolution: each point carries `1/QUAD_POINTS` mass, so
/// this must be well above `1/(1-q)` to resolve the violation budget.
pub const QUAD_POINTS: usize = 2000;

impl Station {
    /// Per-core service rate (req/s).
    pub fn mu(&self) -> f64 {
        1.0 / self.mean_service_s
    }

    /// Raw capacity: the saturation throughput `c·μ` (req/s).
    pub fn raw_capacity(&self) -> f64 {
        self.cores as f64 * self.mu()
    }

    /// Tail of the waiting time: `P(W > t)` at arrival rate `lambda`,
    /// using the M/M/c tail with the Allen–Cunneen `(1+cv²)/2` mean-wait
    /// correction applied to the decay rate.
    pub fn waiting_tail(&self, lambda: f64, t: f64) -> f64 {
        if lambda <= 0.0 {
            return 0.0;
        }
        let mu = self.mu();
        let a = lambda / mu;
        let c = self.cores as f64;
        if a >= c {
            return 1.0; // unstable: waits grow without bound
        }
        let pw = erlang_c(self.cores, a);
        if t <= 0.0 {
            return pw;
        }
        // M/M/c: E[W] = pw / (cμ − λ); Allen–Cunneen scales E[W] by
        // (1+cv²)/2. Keep the exponential shape but stretch its mean.
        let correction = (1.0 + self.service_cv * self.service_cv) / 2.0;
        let theta = (c * mu - lambda) / correction;
        pw * (-theta * t).exp()
    }

    /// The quadrature grid of service-time quantiles. Independent of the
    /// arrival rate and the deadline, so callers that evaluate many tails
    /// (capacity solvers, percentile bisection) compute it once.
    pub fn service_grid(&self) -> Vec<f64> {
        (0..QUAD_POINTS)
            .map(|i| {
                let q = (i as f64 + 0.5) / QUAD_POINTS as f64;
                lognormal_quantile(self.mean_service_s, self.service_cv, q)
            })
            .collect()
    }

    /// Tail of the sojourn time: `P(T > d)` at arrival rate `lambda`,
    /// by quantile quadrature over the log-normal service time.
    pub fn sojourn_tail(&self, lambda: f64, d: f64) -> f64 {
        self.sojourn_tail_with(&self.service_grid(), lambda, d)
    }

    /// As [`Self::sojourn_tail`] with a precomputed [`Self::service_grid`].
    pub fn sojourn_tail_with(&self, grid: &[f64], lambda: f64, d: f64) -> f64 {
        let mu = self.mu();
        if lambda > 0.0 && lambda / mu >= self.cores as f64 {
            return 1.0;
        }
        // The waiting tail's Erlang-C prefactor is also λ-only; hoist it.
        let pw = if lambda <= 0.0 {
            0.0
        } else {
            erlang_c(self.cores, lambda / mu)
        };
        let correction = (1.0 + self.service_cv * self.service_cv) / 2.0;
        let theta = (self.cores as f64 * mu - lambda) / correction;
        let mut acc = 0.0;
        // The grid is sorted ascending; every point at or past the
        // deadline contributes exactly 1.
        for &s in grid {
            acc += if s >= d {
                1.0
            } else if lambda <= 0.0 {
                0.0
            } else {
                pw * (-theta * (d - s)).exp()
            };
        }
        acc / grid.len() as f64
    }

    /// The `q`-percentile of sojourn time at arrival rate `lambda`
    /// (seconds), by bisection on the tail; `None` when the station is
    /// unstable at `lambda` (the percentile grows without bound).
    pub fn sojourn_percentile(&self, lambda: f64, q: f64) -> Option<f64> {
        if lambda > 0.0 && lambda / self.mu() >= self.cores as f64 {
            return None;
        }
        let target = 1.0 - q;
        // Upper bracket: grow until the tail falls below target.
        let mut hi = self.mean_service_s * 4.0;
        for _ in 0..60 {
            if self.sojourn_tail(lambda, hi) <= target {
                break;
            }
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..50 {
            let mid = 0.5 * (lo + hi);
            if self.sojourn_tail(lambda, mid) <= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }

    /// The `q`-percentile SLO capacity: the largest arrival rate such that
    /// `P(T > deadline) ≤ 1 − q`. Returns 0 if even an idle station misses
    /// the percentile (service time alone exceeds the deadline too often).
    pub fn slo_capacity(&self, deadline_s: f64, q: f64) -> f64 {
        self.slo_capacity_with_grid(&self.service_grid(), deadline_s, q)
    }

    /// As [`Self::slo_capacity`] with a caller-supplied service-quantile
    /// grid (e.g. from an empirical distribution).
    pub fn slo_capacity_with_grid(&self, grid: &[f64], deadline_s: f64, q: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&(1.0 - q)),
            "percentile must be in (0,1)"
        );
        let viol_budget = 1.0 - q;
        if self.sojourn_tail_with(grid, 0.0, deadline_s) > viol_budget {
            return 0.0;
        }
        let hi_cap = self.raw_capacity();
        // P(T > d) is monotone increasing in λ: bisect.
        let (mut lo, mut hi) = (0.0, hi_cap * (1.0 - 1e-9));
        if self.sojourn_tail_with(grid, hi, deadline_s) <= viol_budget {
            return hi;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.sojourn_tail_with(grid, mid, deadline_s) <= viol_budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_normal_known_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.99) - 2.326348).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.001) + 3.090232).abs() < 1e-4);
    }

    #[test]
    fn lognormal_quantile_properties() {
        // Median below mean for positive skew.
        let med = lognormal_quantile(10.0, 0.5, 0.5);
        assert!(med < 10.0);
        // Degenerate at cv = 0.
        assert_eq!(lognormal_quantile(10.0, 0.0, 0.99), 10.0);
        // Monotone in p.
        let q1 = lognormal_quantile(10.0, 0.3, 0.5);
        let q2 = lognormal_quantile(10.0, 0.3, 0.9);
        assert!(q2 > q1);
    }

    #[test]
    fn erlang_c_sanity() {
        // Single server: Erlang-C equals utilization ρ.
        assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-12);
        // Light load, many servers: waiting is rare.
        assert!(erlang_c(12, 1.0) < 0.001);
        // Near saturation waiting is almost certain.
        assert!(erlang_c(4, 3.96) > 0.9);
        assert_eq!(erlang_c(4, 0.0), 0.0);
    }

    fn station(cores: u32, mean_ms: f64) -> Station {
        Station {
            cores,
            mean_service_s: mean_ms / 1e3,
            service_cv: 0.3,
        }
    }

    #[test]
    fn waiting_tail_monotone_in_lambda_and_t() {
        let st = station(6, 50.0);
        let t = 0.1;
        let w1 = st.waiting_tail(40.0, t);
        let w2 = st.waiting_tail(100.0, t);
        assert!(w2 > w1);
        let w3 = st.waiting_tail(100.0, 0.3);
        assert!(w3 < w2);
        // Unstable load has certain waiting.
        assert_eq!(st.waiting_tail(st.raw_capacity() * 1.1, 0.1), 1.0);
    }

    #[test]
    fn sojourn_tail_bounds() {
        let st = station(6, 50.0);
        // At zero load only the service time matters; a 500 ms deadline
        // with 50 ms mean service is essentially always met.
        assert!(st.sojourn_tail(0.0, 0.5) < 1e-6);
        // A deadline shorter than typical service is mostly violated.
        assert!(st.sojourn_tail(0.0, 0.01) > 0.9);
    }

    #[test]
    fn sojourn_percentile_consistent_with_capacity() {
        let st = station(6, 50.0);
        let slo = st.slo_capacity(0.5, 0.99);
        // At the SLO capacity the p99 sits at the deadline.
        let p99 = st.sojourn_percentile(slo, 0.99).unwrap();
        assert!((p99 - 0.5).abs() < 0.02, "p99={p99}");
        // Lighter load → lower percentile; unstable load → None.
        let p99_light = st.sojourn_percentile(slo * 0.3, 0.99).unwrap();
        assert!(p99_light < p99);
        assert_eq!(st.sojourn_percentile(st.raw_capacity() * 1.01, 0.99), None);
    }

    #[test]
    fn slo_capacity_below_raw_capacity() {
        let st = station(6, 50.0);
        let slo = st.slo_capacity(0.5, 0.99);
        assert!(slo > 0.0);
        assert!(slo < st.raw_capacity());
        // Achieved rate keeps the tail within budget.
        assert!(st.sojourn_tail(slo * 0.999, 0.5) <= 0.01 + 1e-6);
    }

    #[test]
    fn slo_capacity_zero_when_service_misses_deadline() {
        let st = station(12, 200.0);
        // 100 ms deadline, 200 ms mean service: hopeless.
        assert_eq!(st.slo_capacity(0.1, 0.99), 0.0);
    }

    #[test]
    fn slo_capacity_increases_with_cores_and_speed() {
        let base = station(6, 50.0).slo_capacity(0.5, 0.99);
        let more_cores = station(12, 50.0).slo_capacity(0.5, 0.99);
        let faster = station(6, 25.0).slo_capacity(0.5, 0.99);
        assert!(more_cores > base * 1.9, "cores: {more_cores} vs {base}");
        assert!(faster > base * 1.9, "speed: {faster} vs {base}");
    }

    #[test]
    fn slo_capacity_looser_percentile_is_higher() {
        let st = station(6, 120.0);
        let p99 = st.slo_capacity(0.5, 0.99);
        let p90 = st.slo_capacity(0.5, 0.90);
        assert!(p90 > p99);
    }

    #[test]
    fn tight_deadline_creates_superlinear_sprint_gain() {
        // The effect the paper's 4.8× rests on: when Normal-mode service
        // times sit close to the deadline, the SLO capacity ratio between
        // max sprint and Normal far exceeds the raw capacity ratio.
        let normal = station(6, 200.0); // slow cores
        let sprint = station(12, 110.0); // 12 faster cores
        let raw_ratio = sprint.raw_capacity() / normal.raw_capacity();
        let slo_ratio = sprint.slo_capacity(0.5, 0.99) / normal.slo_capacity(0.5, 0.99).max(1e-9);
        assert!(slo_ratio > raw_ratio, "slo {slo_ratio} vs raw {raw_ratio}");
    }
}
