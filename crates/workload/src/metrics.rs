//! Per-epoch performance records produced by the measurement plane.

use serde::{Deserialize, Serialize};

/// What one server did during one scheduling epoch.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpochPerf {
    /// Offered arrival rate (req/s) before admission control.
    pub offered_rps: f64,
    /// Admitted arrival rate (req/s).
    pub admitted_rps: f64,
    /// Requests completed per second.
    pub completed_rps: f64,
    /// Requests completed *within the SLO deadline* per second — the
    /// goodput the paper's performance metric counts.
    pub goodput_rps: f64,
    /// Requests shed by admission control per second.
    pub shed_rps: f64,
    /// Mean response latency of completed requests (seconds).
    pub mean_latency_s: f64,
    /// Latency at the application's SLO percentile (seconds).
    pub slo_percentile_latency_s: f64,
    /// Mean utilization of the active cores in `[0, 1]`.
    pub utilization: f64,
}

impl EpochPerf {
    /// Fraction of completed requests that met the deadline
    /// (1.0 when nothing completed).
    pub fn slo_attainment(&self) -> f64 {
        if self.completed_rps <= 0.0 {
            1.0
        } else {
            (self.goodput_rps / self.completed_rps).clamp(0.0, 1.0)
        }
    }

    /// Element-wise average of many epoch records (e.g. across the green
    /// servers or across a whole burst).
    pub fn average(records: &[EpochPerf]) -> EpochPerf {
        if records.is_empty() {
            return EpochPerf::default();
        }
        let n = records.len() as f64;
        let mut out = EpochPerf::default();
        for r in records {
            out.offered_rps += r.offered_rps;
            out.admitted_rps += r.admitted_rps;
            out.completed_rps += r.completed_rps;
            out.goodput_rps += r.goodput_rps;
            out.shed_rps += r.shed_rps;
            out.mean_latency_s += r.mean_latency_s;
            out.slo_percentile_latency_s += r.slo_percentile_latency_s;
            out.utilization += r.utilization;
        }
        out.offered_rps /= n;
        out.admitted_rps /= n;
        out.completed_rps /= n;
        out.goodput_rps /= n;
        out.shed_rps /= n;
        out.mean_latency_s /= n;
        out.slo_percentile_latency_s /= n;
        out.utilization /= n;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_attainment() {
        let p = EpochPerf {
            completed_rps: 100.0,
            goodput_rps: 95.0,
            ..Default::default()
        };
        assert!((p.slo_attainment() - 0.95).abs() < 1e-12);
        assert_eq!(EpochPerf::default().slo_attainment(), 1.0);
    }

    #[test]
    fn average_of_records() {
        let a = EpochPerf {
            goodput_rps: 10.0,
            utilization: 0.4,
            ..Default::default()
        };
        let b = EpochPerf {
            goodput_rps: 30.0,
            utilization: 0.8,
            ..Default::default()
        };
        let avg = EpochPerf::average(&[a, b]);
        assert!((avg.goodput_rps - 20.0).abs() < 1e-12);
        assert!((avg.utilization - 0.6).abs() < 1e-12);
        assert_eq!(EpochPerf::average(&[]).goodput_rps, 0.0);
    }
}
