//! Per-application profiles (paper Table II) and their scaling behaviour.
//!
//! Each application is characterized by how its request service time reacts
//! to the two sprint knobs:
//!
//! * **frequency** — a power law `(f_max / f)^φ`: compute-bound code
//!   (Web-Search scoring/sorting) has φ ≈ 1, memory-bound code (Memcached)
//!   much lower;
//! * **core count** — a linear contention term `1 + σ·(c−6)/6` capturing
//!   shared-cache/memory-bandwidth pressure as the second hexa-core socket
//!   lights up.
//!
//! The absolute service-time scale is set relative to each SLO deadline so
//! the model reproduces the paper's measured sprint gains (4.8× SPECjbb,
//! 4.1× Web-Search, 4.7× Memcached): interactive services run with tail
//! headroom, so Normal mode (slow cores) must be throttled well below raw
//! capacity to protect the percentile, while max sprint can run near
//! saturation — that asymmetry is what pushes the gain beyond the raw
//! 2 × 1.67 = 3.33× capacity ratio.

use crate::dist::EmpiricalDist;
use crate::queueing::Station;
use gs_cluster::{PowerModel, ServerSetting};
use gs_sim::SimRng;
use serde::{Deserialize, Serialize};

/// The three evaluated applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Application {
    /// SPECjbb 2013-style Java business benchmark.
    SpecJbb,
    /// CloudSuite Web-Search query serving.
    WebSearch,
    /// Memcached key-value caching.
    Memcached,
}

impl Application {
    /// All applications, in the paper's order.
    pub const ALL: [Application; 3] = [
        Application::SpecJbb,
        Application::WebSearch,
        Application::Memcached,
    ];

    /// The paper-calibrated profile.
    pub fn profile(self) -> AppProfile {
        match self {
            Application::SpecJbb => AppProfile {
                app: self,
                name: "SPECjbb",
                metric: "jops",
                memory_gb: 10.0,
                slo_deadline_s: 0.500,
                slo_percentile: 0.99,
                base_service_ms: 148.1,
                service_cv: 0.32,
                freq_exponent: 0.95,
                core_contention: 0.10,
                max_sprint_power_w: 155.0,
                service_dist: None,
            },
            Application::WebSearch => AppProfile {
                app: self,
                name: "Web-Search",
                metric: "ops",
                memory_gb: 20.0,
                slo_deadline_s: 0.500,
                slo_percentile: 0.90,
                base_service_ms: 164.0,
                service_cv: 0.45,
                freq_exponent: 1.00,
                core_contention: 0.06,
                max_sprint_power_w: 156.0,
                service_dist: None,
            },
            Application::Memcached => AppProfile {
                app: self,
                name: "Memcached",
                metric: "rps",
                memory_gb: 20.0,
                slo_deadline_s: 0.010,
                slo_percentile: 0.95,
                base_service_ms: 4.83,
                service_cv: 0.20,
                freq_exponent: 0.75,
                core_contention: 0.05,
                max_sprint_power_w: 146.0,
                service_dist: None,
            },
        }
    }
}

impl std::fmt::Display for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.profile().name)
    }
}

/// The full per-application model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppProfile {
    /// Which application this profiles.
    pub app: Application,
    /// Human-readable name.
    pub name: &'static str,
    /// The paper's throughput metric name (jops / ops / rps).
    pub metric: &'static str,
    /// Resident memory footprint (Table II).
    pub memory_gb: f64,
    /// SLO latency deadline (seconds).
    pub slo_deadline_s: f64,
    /// SLO percentile (e.g. 0.99 for a 99 %-ile constraint).
    pub slo_percentile: f64,
    /// Mean per-request service time on one core at 2.0 GHz with only the
    /// Normal 6 cores active (ms).
    pub base_service_ms: f64,
    /// Coefficient of variation of service times.
    pub service_cv: f64,
    /// Frequency sensitivity φ: `s ∝ (f_max/f)^φ`.
    pub freq_exponent: f64,
    /// Contention σ: `s ∝ 1 + σ·(c−6)/6`.
    pub core_contention: f64,
    /// Measured full-sprint server power (paper §IV).
    pub max_sprint_power_w: f64,
    /// Optional empirical service-time shape replayed by the DES (the
    /// analytic plane is matched on mean and CV). `None` = log-normal.
    pub service_dist: Option<EmpiricalDist>,
}

impl AppProfile {
    /// Mean service time (seconds) at a sprint setting.
    ///
    /// The contention term is scaled by the frequency fraction: shared
    /// cache/memory pressure grows with the cores' issue rate, so extra
    /// cores at a low clock interfere less than at full speed.
    pub fn mean_service_s(&self, setting: ServerSetting) -> f64 {
        let freq_slowdown = (1.0 / setting.freq_fraction()).powf(self.freq_exponent);
        let contention = 1.0
            + self.core_contention
                * setting.freq_fraction()
                * (setting.cores - gs_cluster::NORMAL_CORES) as f64
                / gs_cluster::NORMAL_CORES as f64;
        self.base_service_ms / 1e3 * freq_slowdown * contention
    }

    /// The queueing station this application forms at a sprint setting.
    pub fn station(&self, setting: ServerSetting) -> Station {
        Station {
            cores: setting.cores as u32,
            mean_service_s: self.mean_service_s(setting),
            service_cv: self.service_cv,
        }
    }

    /// Raw (saturation) capacity at a setting (req/s).
    pub fn raw_capacity(&self, setting: ServerSetting) -> f64 {
        self.station(setting).raw_capacity()
    }

    /// The service-time quantile grid at a setting, honouring the
    /// configured shape: empirical quantiles (rescaled to the setting's
    /// mean) when a measured distribution is attached, log-normal
    /// otherwise. Both the analytic solvers and the SLO-capacity metric
    /// run on this grid, so the two measurement planes share one shape.
    pub fn service_grid(&self, setting: ServerSetting) -> Vec<f64> {
        match &self.service_dist {
            Some(d) => {
                let mean = self.mean_service_s(setting);
                let n = crate::queueing::QUAD_POINTS;
                (0..n)
                    .map(|i| d.quantile_scaled((i as f64 + 0.5) / n as f64, mean))
                    .collect()
            }
            None => self.station(setting).service_grid(),
        }
    }

    /// SLO-constrained capacity at a setting (req/s): the paper's
    /// performance metric.
    pub fn slo_capacity(&self, setting: ServerSetting) -> f64 {
        self.station(setting).slo_capacity_with_grid(
            &self.service_grid(setting),
            self.slo_deadline_s,
            self.slo_percentile,
        )
    }

    /// The calibrated power model for a server running this application.
    pub fn power_model(&self) -> PowerModel {
        PowerModel::from_max_sprint_power(self.max_sprint_power_w)
    }

    /// Full-load power at a setting (W) — the paper's `LoadPower(L_max, S)`.
    pub fn load_power_w(&self, setting: ServerSetting) -> f64 {
        self.power_model().full_load_power_w(setting)
    }

    /// Replace the service-time shape with an empirical distribution
    /// (e.g. parsed from a production service log). The analytic queueing
    /// plane is matched on the distribution's CV; the DES replays the
    /// exact shape via inverse-CDF sampling.
    pub fn with_empirical_service(mut self, dist: EmpiricalDist) -> Self {
        self.service_cv = dist.cv();
        self.service_dist = Some(dist);
        self
    }

    /// Draw one service time (seconds) for a request at `setting` — the
    /// DES's sampling hook, honouring the configured shape.
    pub fn sample_service_s(&self, rng: &mut SimRng, setting: ServerSetting) -> f64 {
        let mean = self.mean_service_s(setting);
        match &self.service_dist {
            Some(d) => d.sample_scaled(rng, mean),
            None => rng.lognormal_mean_cv(mean, self.service_cv),
        }
        .max(1e-6)
    }

    /// The maximum sprint speedup over Normal mode (SLO capacities).
    pub fn max_speedup(&self) -> f64 {
        self.slo_capacity(ServerSetting::max_sprint()) / self.slo_capacity(ServerSetting::normal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_scales_with_knobs() {
        let p = Application::SpecJbb.profile();
        let slow = p.mean_service_s(ServerSetting::normal());
        let fast = p.mean_service_s(ServerSetting::new(6, 8));
        assert!(slow > fast, "lower frequency must be slower");
        let contended = p.mean_service_s(ServerSetting::new(12, 8));
        assert!(contended > fast, "more cores add contention");
    }

    #[test]
    fn memcached_is_least_frequency_sensitive() {
        let ratio = |app: Application| {
            let p = app.profile();
            p.mean_service_s(ServerSetting::new(6, 0)) / p.mean_service_s(ServerSetting::new(6, 8))
        };
        assert!(ratio(Application::Memcached) < ratio(Application::SpecJbb));
        assert!(ratio(Application::SpecJbb) <= ratio(Application::WebSearch));
    }

    #[test]
    fn slo_capacity_positive_at_usable_settings() {
        // One corner is legitimately infeasible: SPECjbb's p99 ≤ 500 ms
        // cannot be met with all 12 cores crawling at 1.2 GHz (contention
        // stacked on the slowest clock pushes the service tail past the
        // deadline). Every other (app, setting) pair must be serviceable,
        // and the PMK simply never selects a zero-capacity setting.
        for app in Application::ALL {
            let p = app.profile();
            for s in ServerSetting::all() {
                let cap = p.slo_capacity(s);
                let infeasible_corner =
                    app == Application::SpecJbb && s == ServerSetting::new(12, 0);
                if infeasible_corner {
                    assert_eq!(cap, 0.0, "expected the corner to be infeasible");
                } else {
                    assert!(cap > 0.0, "{} has zero SLO capacity at {s}", p.name);
                }
            }
        }
    }

    #[test]
    fn max_sprint_speedups_match_paper() {
        // Paper abstract: up to 4.8× SPECjbb, 4.1× Web-Search, 4.7×
        // Memcached with sufficient renewable supply.
        let tol = 0.25;
        let s = Application::SpecJbb.profile().max_speedup();
        assert!((s - 4.8).abs() < tol, "SPECjbb speedup {s}");
        let w = Application::WebSearch.profile().max_speedup();
        assert!((w - 4.1).abs() < tol, "Web-Search speedup {w}");
        let m = Application::Memcached.profile().max_speedup();
        assert!((m - 4.7).abs() < tol, "Memcached speedup {m}");
    }

    #[test]
    fn speedups_exceed_raw_capacity_ratio() {
        for app in Application::ALL {
            let p = app.profile();
            let raw = p.raw_capacity(ServerSetting::max_sprint())
                / p.raw_capacity(ServerSetting::normal());
            assert!(
                p.max_speedup() > raw,
                "{}: SLO speedup {} <= raw {raw}",
                p.name,
                p.max_speedup()
            );
        }
    }

    #[test]
    fn empirical_distribution_reshapes_the_analytic_capacity() {
        use crate::dist::EmpiricalDist;
        // A heavy-tailed bimodal shape with the same mean must cost SLO
        // capacity relative to the calibrated log-normal: the analytic
        // plane sees the measured tail, not just its first two moments.
        let base = Application::SpecJbb.profile();
        let mut samples = vec![1.0_f64; 900];
        samples.extend(std::iter::repeat_n(15.0, 100));
        let heavy = base
            .clone()
            .with_empirical_service(EmpiricalDist::from_samples(samples).unwrap());
        let s = ServerSetting::max_sprint();
        // Means agree by construction (the grid is rescaled).
        let grid = heavy.service_grid(s);
        let grid_mean: f64 = grid.iter().sum::<f64>() / grid.len() as f64;
        assert!((grid_mean - heavy.mean_service_s(s)).abs() / grid_mean < 0.02);
        // Capacity drops under the heavier tail.
        assert!(
            heavy.slo_capacity(s) < base.slo_capacity(s) * 0.9,
            "heavy {} vs lognormal {}",
            heavy.slo_capacity(s),
            base.slo_capacity(s)
        );
    }

    #[test]
    fn load_power_matches_measured_peaks() {
        for (app, peak) in [
            (Application::SpecJbb, 155.0),
            (Application::WebSearch, 156.0),
            (Application::Memcached, 146.0),
        ] {
            let p = app.profile();
            assert!((p.load_power_w(ServerSetting::max_sprint()) - peak).abs() < 1e-9);
        }
    }

    #[test]
    fn table2_constants() {
        let p = Application::SpecJbb.profile();
        assert_eq!(p.memory_gb, 10.0);
        assert_eq!(p.metric, "jops");
        assert!((p.slo_deadline_s - 0.5).abs() < 1e-12);
        assert!((p.slo_percentile - 0.99).abs() < 1e-12);
        let m = Application::Memcached.profile();
        assert!((m.slo_deadline_s - 0.010).abs() < 1e-12);
        assert!((m.slo_percentile - 0.95).abs() < 1e-12);
        assert_eq!(Application::WebSearch.to_string(), "Web-Search");
    }
}
