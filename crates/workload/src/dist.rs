//! Empirical service-time distributions.
//!
//! The built-in profiles use log-normal service times with a calibrated
//! mean and CV. Users reproducing against *their own* services can instead
//! replay measured per-request service times: an [`EmpiricalDist`] built
//! from samples plugs into the application profile, the DES samples from
//! it by inverse-CDF, and the analytic plane is matched on mean and CV.

use gs_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A distribution defined by observed samples, with linear interpolation
/// between order statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalDist {
    /// Sorted, strictly positive samples.
    sorted: Vec<f64>,
    mean: f64,
    cv: f64,
}

/// Why sample ingestion failed.
#[derive(Debug, PartialEq, Eq)]
pub enum EmpiricalError {
    /// No samples supplied.
    Empty,
    /// A sample was zero, negative, or not finite.
    NonPositiveSample,
}

impl std::fmt::Display for EmpiricalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmpiricalError::Empty => f.write_str("empirical distribution needs samples"),
            EmpiricalError::NonPositiveSample => {
                f.write_str("service-time samples must be positive and finite")
            }
        }
    }
}

impl std::error::Error for EmpiricalError {}

impl EmpiricalDist {
    /// Build from raw samples (e.g. parsed from a service log).
    pub fn from_samples(mut samples: Vec<f64>) -> Result<Self, EmpiricalError> {
        if samples.is_empty() {
            return Err(EmpiricalError::Empty);
        }
        if samples.iter().any(|&x| !x.is_finite() || x <= 0.0) {
            return Err(EmpiricalError::NonPositiveSample);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Ok(EmpiricalDist {
            sorted: samples,
            mean,
            cv: var.sqrt() / mean,
        })
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample coefficient of variation.
    pub fn cv(&self) -> f64 {
        self.cv
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if built from a single sample (degenerate but legal).
    pub fn is_empty(&self) -> bool {
        false // construction guarantees at least one sample
    }

    /// The `q`-quantile (`q ∈ [0,1]`) with linear interpolation between
    /// order statistics.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Inverse-CDF sample, rescaled so the distribution's mean equals
    /// `mean_target` (service times scale with frequency/contention, so
    /// the shape is reused at every sprint setting).
    pub fn sample_scaled(&self, rng: &mut SimRng, mean_target: f64) -> f64 {
        self.quantile(rng.uniform()) * (mean_target / self.mean)
    }

    /// The quantile rescaled to `mean_target` (for analytic grids).
    pub fn quantile_scaled(&self, q: f64, mean_target: f64) -> f64 {
        self.quantile(q) * (mean_target / self.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> EmpiricalDist {
        EmpiricalDist::from_samples(vec![4.0, 1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            EmpiricalDist::from_samples(vec![]).unwrap_err(),
            EmpiricalError::Empty
        );
        assert_eq!(
            EmpiricalDist::from_samples(vec![1.0, -2.0]).unwrap_err(),
            EmpiricalError::NonPositiveSample
        );
        assert_eq!(
            EmpiricalDist::from_samples(vec![f64::NAN]).unwrap_err(),
            EmpiricalError::NonPositiveSample
        );
    }

    #[test]
    fn moments() {
        let d = dist();
        assert!((d.mean() - 2.5).abs() < 1e-12);
        // Population sd of {1,2,3,4} is sqrt(1.25).
        assert!((d.cv() - (1.25_f64.sqrt() / 2.5)).abs() < 1e-12);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn quantiles_interpolate() {
        let d = dist();
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 4.0);
        assert!((d.quantile(0.5) - 2.5).abs() < 1e-12);
        // Monotone.
        let mut prev = 0.0;
        for i in 0..=20 {
            let v = d.quantile(i as f64 / 20.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn scaled_sampling_hits_target_mean() {
        let d = dist();
        let mut rng = SimRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| d.sample_scaled(&mut rng, 10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        // Every sample is within the scaled support.
        let m = 10.0 / d.mean();
        for _ in 0..1_000 {
            let x = d.sample_scaled(&mut rng, 10.0);
            assert!((1.0 * m..=4.0 * m).contains(&x));
        }
    }

    #[test]
    fn single_sample_is_degenerate() {
        let d = EmpiricalDist::from_samples(vec![7.0]).unwrap();
        assert_eq!(d.quantile(0.3), 7.0);
        assert_eq!(d.cv(), 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(d.sample_scaled(&mut rng, 14.0), 14.0);
    }
}
