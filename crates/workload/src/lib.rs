//! # gs-workload — interactive data-center workloads
//!
//! The paper evaluates three latency-critical applications (Table II):
//!
//! | Workload   | Memory | Metric (SLO)                        |
//! |------------|--------|--------------------------------------|
//! | SPECjbb    | 10 GB  | jops, 99 %-ile ≤ 500 ms              |
//! | Web-Search | 20 GB  | ops, 90 %-ile ≤ 500 ms               |
//! | Memcached  | 20 GB  | rps, 95 %-ile ≤ 10 ms                |
//!
//! Their *performance* is throughput counted under the tail-latency
//! constraint (SPECjbb's critical-jOPS style metric). This crate models
//! each application as a multi-core queueing station:
//!
//! * [`apps`] — per-application profiles: service times and how they scale
//!   with frequency (compute- vs memory-bound) and core count (contention),
//!   SLO percentile/deadline, and the measured peak sprint power.
//! * [`queueing`] — analytic machinery: Erlang-C, sojourn-time tail of the
//!   M/M/c queue generalized to low-variance service times, and the
//!   SLO-capacity solver (max sustainable rate meeting the percentile).
//! * [`arrivals`] — open-loop arrival processes: Poisson epochs, the burst
//!   intensities `Int=k` of §IV-D, and a Google-style diurnal trace
//!   (paper Fig. 1).
//! * [`des`] — a request-level discrete-event simulation of one server
//!   that measures goodput and latency percentiles directly.
//! * [`metrics`] — the per-epoch performance record.

pub mod apps;
pub mod arrivals;
pub mod des;
pub mod dist;
pub mod loadgen;
pub mod metrics;
pub mod queueing;

pub use apps::{AppProfile, Application};
pub use arrivals::{BurstPattern, DiurnalTrace};
pub use des::{
    CalendarCompletions, CompletionQueue, HeapCompletions, ReferenceServerSim, ServerSim,
    ServerSimWith,
};
pub use dist::EmpiricalDist;
pub use loadgen::{ClosedLoopDriver, Driver, DriverReport, RateSchedule};
pub use metrics::EpochPerf;
