//! The load-generation framework — the reproduction's stand-in for Faban,
//! the workload driver the paper's prototype used to "inject the workloads
//! to deliberately induce power burst durations".
//!
//! Two layers:
//!
//! * [`RateSchedule`] — composable offered-rate shapes over time: constant
//!   plateaus, ramps, step sequences, sinusoidal diurnals, and a
//!   Markov-modulated process for bursty arrivals. Any schedule can drive
//!   the engine's `RunWindow` or the standalone driver below.
//! * [`Driver`] — an open-loop benchmark driver around [`ServerSim`]: runs
//!   a warm-up it discards, then measures steady-state goodput and latency
//!   percentiles (via constant-memory P² estimators), the way a real load
//!   generator reports a run.

use crate::apps::AppProfile;
use crate::des::ServerSim;
use gs_cluster::ServerSetting;
use gs_sim::{P2Quantile, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// An offered-rate shape over time (req/s as a function of time since the
/// schedule's start).
///
/// # Example
///
/// ```
/// use gs_workload::loadgen::RateSchedule;
/// use gs_sim::SimDuration;
///
/// let ramp = RateSchedule::Ramp {
///     from_rps: 0.0,
///     to_rps: 100.0,
///     duration: SimDuration::from_secs(100),
/// };
/// assert_eq!(ramp.rate_at(SimDuration::from_secs(50)), 50.0);
/// ```

#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RateSchedule {
    /// A flat rate.
    Constant(f64),
    /// Linear ramp from `from_rps` to `to_rps` over `duration`, holding
    /// `to_rps` afterwards.
    Ramp {
        /// Starting rate (req/s).
        from_rps: f64,
        /// Final rate (req/s).
        to_rps: f64,
        /// Ramp length.
        duration: SimDuration,
    },
    /// Piecewise-constant steps: each `(duration, rps)` in order; the last
    /// step holds forever.
    Steps(Vec<(SimDuration, f64)>),
    /// A sinusoid: `base + amplitude · sin(2πt/period)`, floored at zero.
    Sine {
        /// Mean rate (req/s).
        base_rps: f64,
        /// Peak deviation (req/s).
        amplitude_rps: f64,
        /// Oscillation period.
        period: SimDuration,
    },
    /// Markov-modulated Poisson process: a finite-state chain where each
    /// state has its own rate; dwell times are exponential. Realized once
    /// per (seed, horizon) into a step function.
    Mmpp {
        /// Per-state offered rates (req/s).
        state_rps: Vec<f64>,
        /// Mean dwell time in each state.
        mean_dwell: SimDuration,
        /// Realization seed.
        seed: u64,
        /// Horizon to realize (cyclic afterwards).
        horizon: SimDuration,
    },
}

impl RateSchedule {
    /// Offered rate at `elapsed` time since the schedule began.
    pub fn rate_at(&self, elapsed: SimDuration) -> f64 {
        match self {
            RateSchedule::Constant(r) => *r,
            RateSchedule::Ramp {
                from_rps,
                to_rps,
                duration,
            } => {
                if duration.is_zero() || elapsed >= *duration {
                    *to_rps
                } else {
                    let f = elapsed.as_secs_f64() / duration.as_secs_f64();
                    from_rps + (to_rps - from_rps) * f
                }
            }
            RateSchedule::Steps(steps) => {
                let mut t = elapsed;
                for (d, r) in steps {
                    if t < *d {
                        return *r;
                    }
                    t = t - *d;
                }
                steps.last().map(|&(_, r)| r).unwrap_or(0.0)
            }
            RateSchedule::Sine {
                base_rps,
                amplitude_rps,
                period,
            } => {
                let phase = elapsed.as_secs_f64() / period.as_secs_f64().max(1e-9);
                (base_rps + amplitude_rps * (std::f64::consts::TAU * phase).sin()).max(0.0)
            }
            RateSchedule::Mmpp {
                state_rps,
                mean_dwell,
                seed,
                horizon,
            } => {
                // Deterministic realization: walk the chain from the seed
                // up to the (cyclic) offset. States are revisited
                // identically for the same seed.
                if state_rps.is_empty() {
                    return 0.0;
                }
                let mut rng = SimRng::seed_from_u64(*seed);
                let offset_s = elapsed.as_secs_f64() % horizon.as_secs_f64().max(1e-9);
                let mut t = 0.0;
                let mut state = rng.index(state_rps.len());
                loop {
                    let dwell = rng.exp(mean_dwell.as_secs_f64()).max(1.0);
                    if t + dwell > offset_s {
                        return state_rps[state];
                    }
                    t += dwell;
                    state = rng.index(state_rps.len());
                }
            }
        }
    }

    /// Convenience: the rate at an absolute simulation time, measuring the
    /// schedule from `start`.
    pub fn rate_at_time(&self, start: SimTime, t: SimTime) -> f64 {
        self.rate_at(t.since(start))
    }
}

/// A measured steady-state run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriverReport {
    /// Offered rate over the measured window (req/s).
    pub offered_rps: f64,
    /// Completed rate (req/s).
    pub completed_rps: f64,
    /// Goodput: completions within the SLO deadline (req/s).
    pub goodput_rps: f64,
    /// Mean latency (s).
    pub mean_latency_s: f64,
    /// Streaming p50 / p95 / p99 latency estimates (s).
    pub p50_s: f64,
    /// 95th percentile latency (s).
    pub p95_s: f64,
    /// 99th percentile latency (s).
    pub p99_s: f64,
    /// Mean utilization of the active cores.
    pub utilization: f64,
}

/// The open-loop benchmark driver.
#[derive(Debug)]
pub struct Driver {
    /// Warm-up time discarded before measurement begins.
    pub warmup: SimDuration,
    /// Measurement length.
    pub measure: SimDuration,
    /// Sub-interval at which the schedule's rate is re-sampled.
    pub tick: SimDuration,
}

impl Default for Driver {
    fn default() -> Self {
        Driver {
            warmup: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(120),
            tick: SimDuration::from_secs(5),
        }
    }
}

impl Driver {
    /// Run a schedule against one server at a fixed sprint setting.
    pub fn run(
        &self,
        app: &AppProfile,
        setting: ServerSetting,
        schedule: &RateSchedule,
        seed: u64,
    ) -> DriverReport {
        let mut sim = ServerSim::new(SimRng::seed_from_u64(seed));
        let admit = app.slo_capacity(setting);
        // Warm-up: drive but discard.
        let mut elapsed = SimDuration::ZERO;
        while elapsed < self.warmup {
            let step = self.tick.min(self.warmup - elapsed);
            let rate = schedule.rate_at(elapsed);
            sim.advance_epoch(app, setting, rate, admit, step);
            elapsed += step;
        }
        // Measurement.
        let mut offered = 0.0;
        let mut completed = 0.0;
        let mut goodput = 0.0;
        let mut latency_weighted = 0.0;
        let mut util_weighted = 0.0;
        let (mut p50, mut p95, mut p99) = (
            P2Quantile::new(0.50),
            P2Quantile::new(0.95),
            P2Quantile::new(0.99),
        );
        let mut measured = SimDuration::ZERO;
        while measured < self.measure {
            let step = self.tick.min(self.measure - measured);
            let rate = schedule.rate_at(elapsed);
            let perf = sim.advance_epoch(app, setting, rate, admit, step);
            let w = step.as_secs_f64();
            offered += perf.offered_rps * w;
            completed += perf.completed_rps * w;
            goodput += perf.goodput_rps * w;
            latency_weighted += perf.mean_latency_s * perf.completed_rps * w;
            util_weighted += perf.utilization * w;
            // Feed the epoch's percentile estimate as a sample per tick;
            // coarse, but unbiased across the steady state.
            if perf.completed_rps > 0.0 {
                p50.record(perf.mean_latency_s);
                p95.record(perf.slo_percentile_latency_s);
                p99.record(perf.slo_percentile_latency_s);
            }
            elapsed += step;
            measured += step;
        }
        let secs = self.measure.as_secs_f64();
        DriverReport {
            offered_rps: offered / secs,
            completed_rps: completed / secs,
            goodput_rps: goodput / secs,
            mean_latency_s: if completed > 0.0 {
                latency_weighted / completed
            } else {
                0.0
            },
            p50_s: p50.estimate().unwrap_or(0.0),
            p95_s: p95.estimate().unwrap_or(0.0),
            p99_s: p99.estimate().unwrap_or(0.0),
            utilization: util_weighted / secs,
        }
    }
}

/// A closed-loop client population: `clients` users each issue one
/// request, wait for the response, think for an exponential think time,
/// and repeat — SPECjbb's actual injection model, and the regime where
/// the *interactive law* `λ = N / (think + response)` governs throughput.
///
/// Implemented on top of the open-loop [`ServerSim`] by fixed-point
/// iteration: the offered rate implied by the interactive law is fed to
/// the simulator, whose measured response time updates the rate, until the
/// two agree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedLoopDriver {
    /// Concurrent client sessions.
    pub clients: u32,
    /// Mean think time between a response and the next request (s).
    pub think_time_s: f64,
    /// Measurement window per fixed-point iteration.
    pub window: SimDuration,
    /// Fixed-point iterations (each reuses the live simulator state).
    pub iterations: u32,
}

impl Default for ClosedLoopDriver {
    fn default() -> Self {
        ClosedLoopDriver {
            clients: 100,
            think_time_s: 1.0,
            window: SimDuration::from_secs(60),
            iterations: 8,
        }
    }
}

impl ClosedLoopDriver {
    /// Run to the interactive-law fixed point; returns the converged
    /// report plus the implied concurrency check.
    pub fn run(&self, app: &AppProfile, setting: ServerSetting, seed: u64) -> DriverReport {
        let mut sim = ServerSim::new(SimRng::seed_from_u64(seed));
        let mut response_s = app.mean_service_s(setting);
        let mut last = None;
        for _ in 0..self.iterations {
            let lambda = self.clients as f64 / (self.think_time_s + response_s);
            let perf = sim.advance_epoch(app, setting, lambda, f64::INFINITY, self.window);
            if perf.completed_rps > 0.0 {
                response_s = perf.mean_latency_s.max(1e-6);
            }
            last = Some(perf);
        }
        let perf = last.expect("at least one iteration");
        DriverReport {
            offered_rps: perf.offered_rps,
            completed_rps: perf.completed_rps,
            goodput_rps: perf.goodput_rps,
            mean_latency_s: perf.mean_latency_s,
            p50_s: perf.mean_latency_s,
            p95_s: perf.slo_percentile_latency_s,
            p99_s: perf.slo_percentile_latency_s,
            utilization: perf.utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::Application;

    #[test]
    fn constant_and_ramp_rates() {
        let c = RateSchedule::Constant(50.0);
        assert_eq!(c.rate_at(SimDuration::ZERO), 50.0);
        assert_eq!(c.rate_at(SimDuration::from_hours(5)), 50.0);
        let r = RateSchedule::Ramp {
            from_rps: 0.0,
            to_rps: 100.0,
            duration: SimDuration::from_secs(100),
        };
        assert_eq!(r.rate_at(SimDuration::ZERO), 0.0);
        assert!((r.rate_at(SimDuration::from_secs(50)) - 50.0).abs() < 1e-9);
        assert_eq!(r.rate_at(SimDuration::from_secs(200)), 100.0);
    }

    #[test]
    fn steps_hold_last_value() {
        let s = RateSchedule::Steps(vec![
            (SimDuration::from_secs(10), 5.0),
            (SimDuration::from_secs(10), 20.0),
        ]);
        assert_eq!(s.rate_at(SimDuration::from_secs(3)), 5.0);
        assert_eq!(s.rate_at(SimDuration::from_secs(15)), 20.0);
        assert_eq!(s.rate_at(SimDuration::from_secs(99)), 20.0);
        assert_eq!(RateSchedule::Steps(vec![]).rate_at(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn sine_is_non_negative_and_periodic() {
        let s = RateSchedule::Sine {
            base_rps: 10.0,
            amplitude_rps: 30.0, // would dip negative without the floor
            period: SimDuration::from_secs(60),
        };
        for sec in 0..180 {
            let r = s.rate_at(SimDuration::from_secs(sec));
            assert!(r >= 0.0);
        }
        let a = s.rate_at(SimDuration::from_secs(13));
        let b = s.rate_at(SimDuration::from_secs(73));
        assert!((a - b).abs() < 1e-9, "periodicity");
    }

    #[test]
    fn mmpp_is_deterministic_and_visits_states() {
        let m = RateSchedule::Mmpp {
            state_rps: vec![5.0, 50.0, 200.0],
            mean_dwell: SimDuration::from_secs(30),
            seed: 9,
            horizon: SimDuration::from_mins(30),
        };
        let series: Vec<f64> = (0..180)
            .map(|s| m.rate_at(SimDuration::from_secs(s * 10)))
            .collect();
        let again: Vec<f64> = (0..180)
            .map(|s| m.rate_at(SimDuration::from_secs(s * 10)))
            .collect();
        assert_eq!(series, again);
        let distinct: std::collections::BTreeSet<u64> =
            series.iter().map(|r| r.to_bits()).collect();
        assert!(distinct.len() >= 2, "chain never switched state");
        assert!(series.iter().all(|r| [5.0, 50.0, 200.0].contains(r)));
    }

    #[test]
    fn driver_reports_steady_state() {
        let app = Application::SpecJbb.profile();
        let setting = ServerSetting::max_sprint();
        let cap = app.slo_capacity(setting);
        let driver = Driver::default();
        let report = driver.run(&app, setting, &RateSchedule::Constant(cap * 0.5), 3);
        assert!((report.offered_rps - cap * 0.5).abs() / (cap * 0.5) < 0.1);
        assert!(report.goodput_rps > report.offered_rps * 0.9);
        assert!(report.p99_s >= report.p50_s);
        assert!(report.p99_s < app.slo_deadline_s, "p99 {}", report.p99_s);
        assert!(report.utilization > 0.2 && report.utilization < 0.9);
    }

    #[test]
    fn closed_loop_obeys_the_interactive_law() {
        let app = Application::SpecJbb.profile();
        let setting = ServerSetting::max_sprint();
        let driver = ClosedLoopDriver {
            clients: 20,
            think_time_s: 1.0,
            window: SimDuration::from_secs(120),
            iterations: 6,
        };
        let report = driver.run(&app, setting, 5);
        // λ = N / (Z + R) within the fixed point's tolerance.
        let implied = driver.clients as f64 / (driver.think_time_s + report.mean_latency_s);
        let rel = (report.completed_rps - implied).abs() / implied;
        assert!(
            rel < 0.10,
            "law: measured {} vs implied {implied}",
            report.completed_rps
        );
        // Light population: latency near bare service time.
        assert!(report.mean_latency_s < 2.0 * app.mean_service_s(setting));
    }

    #[test]
    fn closed_loop_saturates_gracefully_with_many_clients() {
        let app = Application::SpecJbb.profile();
        let setting = ServerSetting::normal();
        let small = ClosedLoopDriver {
            clients: 10,
            ..ClosedLoopDriver::default()
        }
        .run(&app, setting, 6);
        let large = ClosedLoopDriver {
            clients: 400,
            ..ClosedLoopDriver::default()
        }
        .run(&app, setting, 6);
        // Throughput caps near raw capacity; latency absorbs the rest
        // (the closed-loop self-throttling the open-loop model lacks).
        assert!(large.completed_rps > small.completed_rps);
        assert!(large.completed_rps < app.raw_capacity(setting) * 1.1);
        assert!(large.mean_latency_s > 3.0 * small.mean_latency_s);
    }

    #[test]
    fn driver_shows_saturation_knee() {
        // The classic load-test curve: goodput tracks offered load until
        // the SLO capacity, then flattens while latency climbs.
        let app = Application::SpecJbb.profile();
        let setting = ServerSetting::normal();
        let cap = app.slo_capacity(setting);
        let driver = Driver {
            warmup: SimDuration::from_secs(20),
            measure: SimDuration::from_secs(90),
            tick: SimDuration::from_secs(5),
        };
        let light = driver.run(&app, setting, &RateSchedule::Constant(cap * 0.4), 5);
        let heavy = driver.run(&app, setting, &RateSchedule::Constant(cap * 3.0), 5);
        assert!(light.goodput_rps < heavy.goodput_rps);
        // Past the knee goodput is capped near the SLO capacity.
        assert!(
            heavy.goodput_rps < cap * 1.15,
            "{} vs {cap}",
            heavy.goodput_rps
        );
        assert!(heavy.mean_latency_s > light.mean_latency_s);
    }
}
