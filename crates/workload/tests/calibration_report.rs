//! Prints the calibration surface used to fit the per-app parameters.
//! Run with: cargo test -p gs-workload --test calibration_report -- --ignored --nocapture
use gs_cluster::ServerSetting;
use gs_workload::apps::Application;

#[test]
#[ignore]
fn report() {
    for app in Application::ALL {
        let p = app.profile();
        let n = p.slo_capacity(ServerSetting::normal());
        let m = p.slo_capacity(ServerSetting::max_sprint());
        let raw_n = p.raw_capacity(ServerSetting::normal());
        let raw_m = p.raw_capacity(ServerSetting::max_sprint());
        println!(
            "{:<11} slo_norm={:8.2} slo_max={:8.2} speedup={:5.2} raw_ratio={:4.2} util_n={:4.2} util_m={:4.2}",
            p.name, n, m, m / n, raw_m / raw_n, n / raw_n, m / raw_m
        );
    }
}

/// Bisect base_service_ms (scaling the profile's value) to hit the paper's
/// target speedup for each app; prints the solved value.
#[test]
#[ignore]
fn solve_base_service() {
    use gs_workload::apps::AppProfile;
    fn speedup(p: &AppProfile) -> f64 {
        p.slo_capacity(ServerSetting::max_sprint()) / p.slo_capacity(ServerSetting::normal())
    }
    for (app, target) in [
        (Application::SpecJbb, 4.8),
        (Application::WebSearch, 4.1),
        (Application::Memcached, 4.7),
    ] {
        let base = app.profile();
        let (mut lo, mut hi) = (0.2, 4.0); // scale factors on base_service_ms
        for _ in 0..50 {
            let mid = 0.5 * (lo + hi);
            let mut p = base.clone();
            p.base_service_ms = base.base_service_ms * mid;
            let s = speedup(&p);
            if s < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut p = base.clone();
        p.base_service_ms = base.base_service_ms * lo;
        println!(
            "{:<11} base_service_ms = {:8.3} (scale {:.3}) -> speedup {:.3}",
            p.name,
            p.base_service_ms,
            lo,
            speedup(&p)
        );
    }
}

/// 2-D sweep over (freq_exponent, base_service scale) per app; prints
/// combos landing near the target speedup with low sensitivity.
#[test]
#[ignore]
fn sweep_phi_base() {
    use gs_workload::apps::AppProfile;
    fn speedup(p: &AppProfile) -> f64 {
        let n = p.slo_capacity(ServerSetting::normal());
        if n <= 0.0 {
            return f64::NAN;
        }
        p.slo_capacity(ServerSetting::max_sprint()) / n
    }
    for (app, target) in [
        (Application::SpecJbb, 4.8),
        (Application::WebSearch, 4.1),
        (Application::Memcached, 4.7),
    ] {
        let base = app.profile();
        println!(
            "=== {} target {target} (cv={}, sigma={})",
            base.name, base.service_cv, base.core_contention
        );
        for phi_i in 0..6 {
            let phi = match app {
                Application::Memcached => 0.5 + 0.08 * phi_i as f64,
                _ => 0.8 + 0.05 * phi_i as f64,
            };
            // bisect base scale, guarding NaN (treat NaN as "too high")
            let (mut lo, mut hi) = (0.2, 5.0);
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                let mut p = base.clone();
                p.freq_exponent = phi;
                p.base_service_ms = base.base_service_ms * mid;
                let s = speedup(&p);
                if s.is_nan() || s >= target {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            let mut p = base.clone();
            p.freq_exponent = phi;
            p.base_service_ms = base.base_service_ms * hi;
            let s_hit = speedup(&p);
            // sensitivity: +2% base
            let mut p2 = p.clone();
            p2.base_service_ms = p.base_service_ms * 1.02;
            let s2 = speedup(&p2);
            println!(
                "  phi={:.2} base={:8.3}ms speedup={:6.3} (+2% base -> {:6.3})",
                phi, p.base_service_ms, s_hit, s2
            );
        }
    }
}

/// Memcached-specific sweep: (cv, sigma, phi) grid, solving base each time.
#[test]
#[ignore]
fn sweep_memcached() {
    use gs_workload::apps::AppProfile;
    fn speedup(p: &AppProfile) -> f64 {
        let n = p.slo_capacity(ServerSetting::normal());
        if n <= 0.0 {
            return f64::NAN;
        }
        p.slo_capacity(ServerSetting::max_sprint()) / n
    }
    let base = Application::Memcached.profile();
    for cv in [0.20, 0.25, 0.30] {
        for sigma in [0.05, 0.10, 0.15] {
            for phi in [0.55, 0.65, 0.75] {
                let (mut lo, mut hi) = (0.2, 8.0);
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    let mut p = base.clone();
                    p.service_cv = cv;
                    p.core_contention = sigma;
                    p.freq_exponent = phi;
                    p.base_service_ms = base.base_service_ms * mid;
                    let s = speedup(&p);
                    if s.is_nan() || s >= 4.7 {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                let mk = |scale: f64| {
                    let mut p = base.clone();
                    p.service_cv = cv;
                    p.core_contention = sigma;
                    p.freq_exponent = phi;
                    p.base_service_ms = base.base_service_ms * scale;
                    p
                };
                let p = mk(hi);
                let s = speedup(&p);
                let s2 = speedup(&mk(hi * 1.02));
                let s3 = speedup(&mk(hi * 0.98));
                println!("cv={cv:.2} sig={sigma:.2} phi={phi:.2} base={:7.3}ms s={s:7.3} (+2%={s2:7.3} -2%={s3:7.3})", p.base_service_ms);
            }
        }
    }
}

/// Final fit: for candidate cv values solve base to hit the target, then
/// check the worst-case setting (12c@1.2GHz) keeps positive capacity.
#[test]
#[ignore]
fn final_fit() {
    use gs_workload::apps::AppProfile;
    fn speedup(p: &AppProfile) -> f64 {
        let n = p.slo_capacity(ServerSetting::normal());
        if n <= 0.0 {
            return f64::NAN;
        }
        p.slo_capacity(ServerSetting::max_sprint()) / n
    }
    for (app, target, cvs) in [
        (Application::SpecJbb, 4.8, [0.28, 0.30, 0.32]),
        (Application::WebSearch, 4.1, [0.40, 0.45, 0.50]),
        (Application::Memcached, 4.7, [0.18, 0.20, 0.22]),
    ] {
        for cv in cvs {
            let base = app.profile();
            let (mut lo, mut hi) = (0.2, 8.0);
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                let mut p = base.clone();
                p.service_cv = cv;
                p.base_service_ms = base.base_service_ms * mid;
                let s = speedup(&p);
                if s.is_nan() || s >= target {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            let mut p = base.clone();
            p.service_cv = cv;
            p.base_service_ms = base.base_service_ms * hi;
            let worst = p.slo_capacity(ServerSetting::new(12, 0));
            let norm = p.slo_capacity(ServerSetting::normal());
            println!("{:<11} cv={cv:.2} base={:7.3} s={:6.3} (+2%={:6.3}) worst12c1.2={:8.3} normal={:8.3}",
                p.name, p.base_service_ms, speedup(&p),
                { let mut q = p.clone(); q.base_service_ms *= 1.02; speedup(&q) }, worst, norm);
        }
    }
}
