//! Cross-validation of the two measurement planes: the request-level DES
//! must agree with the closed-form queueing model it shares parameters
//! with — throughput at saturation, SLO attainment at the solved
//! capacity, and latency percentiles under moderate load.

use gs_cluster::ServerSetting;
use gs_sim::{SimDuration, SimRng};
use gs_workload::apps::Application;
use gs_workload::des::ServerSim;
use proptest::prelude::{prop_assert, proptest, ProptestConfig};

fn settings_under_test() -> [ServerSetting; 4] {
    [
        ServerSetting::normal(),
        ServerSetting::new(8, 4),
        ServerSetting::new(12, 2),
        ServerSetting::max_sprint(),
    ]
}

#[test]
fn des_throughput_matches_raw_capacity_at_overload() {
    let app = Application::SpecJbb.profile();
    for setting in settings_under_test() {
        let raw = app.raw_capacity(setting);
        let mut sim = ServerSim::new(SimRng::seed_from_u64(setting.action_index() as u64));
        let perf = sim.advance_epoch(
            &app,
            setting,
            raw * 2.0,
            f64::INFINITY,
            SimDuration::from_secs(400),
        );
        let rel = (perf.completed_rps - raw).abs() / raw;
        assert!(
            rel < 0.06,
            "{setting}: DES {} vs raw {raw}",
            perf.completed_rps
        );
    }
}

#[test]
fn des_attainment_near_percentile_at_solved_capacity() {
    // Running exactly at the analytic SLO capacity, the measured fraction
    // of requests meeting the deadline should sit near the percentile
    // target — the two planes agree on where the SLO boundary lies.
    for app in [Application::SpecJbb, Application::WebSearch] {
        let p = app.profile();
        for setting in [ServerSetting::normal(), ServerSetting::max_sprint()] {
            let cap = p.slo_capacity(setting);
            let mut sim = ServerSim::new(SimRng::seed_from_u64(7));
            let perf =
                sim.advance_epoch(&p, setting, cap, f64::INFINITY, SimDuration::from_secs(600));
            let attained = perf.slo_attainment();
            assert!(
                attained >= p.slo_percentile - 0.04 && attained <= 1.0,
                "{:?} {setting}: attainment {attained} vs target {}",
                app,
                p.slo_percentile
            );
        }
    }
}

#[test]
fn des_percentile_latency_matches_analytic_at_moderate_load() {
    let app = Application::SpecJbb.profile();
    let setting = ServerSetting::max_sprint();
    let station = app.station(setting);
    let lambda = 0.7 * app.slo_capacity(setting);
    let analytic_p99 = station
        .sojourn_percentile(lambda, app.slo_percentile)
        .expect("stable load");
    let mut sim = ServerSim::new(SimRng::seed_from_u64(3));
    let perf = sim.advance_epoch(
        &app,
        setting,
        lambda,
        f64::INFINITY,
        SimDuration::from_secs(900),
    );
    let measured = perf.slo_percentile_latency_s;
    let rel = (measured - analytic_p99).abs() / analytic_p99;
    assert!(
        rel < 0.30,
        "p99: DES {measured:.4}s vs analytic {analytic_p99:.4}s"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// At sub-SLO load the DES completes essentially everything it
    /// admits, for any app/setting/load combination.
    #[test]
    fn des_completes_admitted_work_below_capacity(
        app_idx in 0_usize..3,
        cores in 6_u8..=12,
        freq in 0_u8..9,
        load_frac in 0.1_f64..0.8,
        seed in 0_u64..64,
    ) {
        let app = Application::ALL[app_idx].profile();
        let setting = ServerSetting::new(cores, freq);
        let cap = app.slo_capacity(setting);
        // Skip the one infeasible corner (SPECjbb at 12c@1.2GHz).
        if cap <= 0.0 {
            return Ok(());
        }
        let lambda = cap * load_frac;
        let mut sim = ServerSim::new(SimRng::seed_from_u64(seed));
        let perf = sim.advance_epoch(&app, setting, lambda, cap, SimDuration::from_secs(60));
        // Completion keeps pace with admission (allow small carryover).
        prop_assert!(perf.completed_rps >= perf.admitted_rps * 0.9 - 1.0);
        // Attainment comfortably above the percentile at this headroom.
        prop_assert!(perf.slo_attainment() >= app.slo_percentile - 0.05);
    }
}
