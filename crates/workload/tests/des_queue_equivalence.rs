//! Property: the production calendar-queue DES ([`ServerSim`]) and the
//! heap-backed reference DES ([`ReferenceServerSim`]) are observationally
//! identical end to end — same RNG consumption, same per-epoch metrics
//! down to the last bit (including the SLO-percentile latency), same
//! carried backlog — across applications, load levels, and epoch counts.
//! This is the contract that let the calendar queue replace the
//! `BinaryHeap` without perturbing a single golden output.

use gs_cluster::ServerSetting;
use gs_sim::{SimDuration, SimRng};
use gs_workload::apps::Application;
use gs_workload::des::{ReferenceServerSim, ServerSim};
use gs_workload::metrics::EpochPerf;
use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};

/// Exact bit equality on every field of two epoch records.
fn assert_perf_identical(a: &EpochPerf, b: &EpochPerf) -> Result<(), TestCaseError> {
    for (x, y, name) in [
        (a.offered_rps, b.offered_rps, "offered_rps"),
        (a.admitted_rps, b.admitted_rps, "admitted_rps"),
        (a.completed_rps, b.completed_rps, "completed_rps"),
        (a.goodput_rps, b.goodput_rps, "goodput_rps"),
        (a.shed_rps, b.shed_rps, "shed_rps"),
        (a.mean_latency_s, b.mean_latency_s, "mean_latency_s"),
        (
            a.slo_percentile_latency_s,
            b.slo_percentile_latency_s,
            "slo_percentile_latency_s",
        ),
        (a.utilization, b.utilization, "utilization"),
    ] {
        prop_assert!(
            x.to_bits() == y.to_bits(),
            "{name} diverged: calendar {x} vs heap {y}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn calendar_and_heap_des_agree_end_to_end(
        seed in 0_u64..10_000,
        load_frac in 0.2_f64..1.5,
        app_idx in 0_usize..3,
        epochs in 1_usize..4,
    ) {
        let app = [
            Application::SpecJbb,
            Application::WebSearch,
            Application::Memcached,
        ][app_idx]
            .profile();
        let setting = ServerSetting::max_sprint();
        let cap = app.slo_capacity(setting);
        let offered = cap * load_frac;
        let epoch = SimDuration::from_secs(5);

        let mut cal = ServerSim::new(SimRng::seed_from_u64(seed));
        let mut heap = ReferenceServerSim::new(SimRng::seed_from_u64(seed));
        for _ in 0..epochs {
            // Overload (load_frac > 1) exercises admission shedding and a
            // backlog carried across epochs through both queue types.
            let pa = cal.advance_epoch(&app, setting, offered, cap, epoch);
            let pb = heap.advance_epoch(&app, setting, offered, cap, epoch);
            assert_perf_identical(&pa, &pb)?;
            prop_assert_eq!(cal.backlog(), heap.backlog());
            prop_assert_eq!(cal.now(), heap.now());
        }
    }
}
