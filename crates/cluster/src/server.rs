//! A single server: identity, provisioning, live sprint setting, and its
//! power draw under the calibrated model.

use crate::control::{ServerControl, SimControl};
use crate::dvfs::ServerSetting;
use crate::power_model::PowerModel;
use serde::{Deserialize, Serialize};

/// Which power bus feeds a server (paper Fig. 2: some racks hang off the
/// green bus + battery, the rest are utility-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provisioning {
    /// Green bus: renewable + server-level battery, grid as Normal-mode
    /// backstop.
    Green,
    /// Utility-dependent: grid only, inside the grid budget.
    GridOnly,
}

/// One server of the prototype cluster.
#[derive(Debug)]
pub struct Server {
    id: usize,
    provisioning: Provisioning,
    power_model: PowerModel,
    control: SimControl,
    powered: bool,
}

impl Server {
    /// Create a server in Normal mode, powered up.
    pub fn new(id: usize, provisioning: Provisioning, power_model: PowerModel) -> Self {
        Server {
            id,
            provisioning,
            power_model,
            control: SimControl::new(),
            powered: true,
        }
    }

    /// Physical power state: a crashed or flapping server draws nothing
    /// and carries no load until it is powered back up.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Power the server down (0 W) or back up. A server that comes back
    /// from an outage boots in Normal mode — its pre-crash sprint setting
    /// is volatile state, exactly like the engine's fleet-fault model.
    pub fn set_powered(&mut self, on: bool) {
        if on && !self.powered {
            self.control
                .apply(ServerSetting::normal())
                .expect("sim control cannot fail");
        }
        self.powered = on;
    }

    /// Stable identifier (index in the cluster).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Bus assignment.
    pub fn provisioning(&self) -> Provisioning {
        self.provisioning
    }

    /// True if on the green bus.
    pub fn is_green(&self) -> bool {
        self.provisioning == Provisioning::Green
    }

    /// The calibrated power model for the application it hosts.
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// Replace the power model (when the hosted application changes).
    pub fn set_power_model(&mut self, m: PowerModel) {
        self.power_model = m;
    }

    /// Currently applied sprint setting.
    pub fn setting(&self) -> ServerSetting {
        self.control.read().expect("sim control cannot fail")
    }

    /// Apply a sprint setting.
    pub fn apply_setting(&mut self, s: ServerSetting) {
        self.control.apply(s).expect("sim control cannot fail");
    }

    /// Setting transitions so far (knob-churn diagnostic).
    pub fn setting_transitions(&self) -> u64 {
        self.control.transitions()
    }

    /// Power draw (W) at the current setting and the given utilization.
    /// Zero while powered down.
    pub fn power_w(&self, utilization: f64) -> f64 {
        if !self.powered {
            return 0.0;
        }
        self.power_model.power_w(self.setting(), utilization)
    }

    /// Planning power (W) at full load for an arbitrary setting.
    pub fn planned_power_w(&self, setting: ServerSetting) -> f64 {
        self.power_model.full_load_power_w(setting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(
            0,
            Provisioning::Green,
            PowerModel::from_max_sprint_power(155.0),
        )
    }

    #[test]
    fn starts_in_normal_mode() {
        let s = server();
        assert_eq!(s.setting(), ServerSetting::normal());
        assert!(s.is_green());
        assert_eq!(s.id(), 0);
    }

    #[test]
    fn apply_and_read_setting() {
        let mut s = server();
        s.apply_setting(ServerSetting::max_sprint());
        assert_eq!(s.setting(), ServerSetting::max_sprint());
        assert_eq!(s.setting_transitions(), 1);
    }

    #[test]
    fn power_tracks_setting_and_utilization() {
        let mut s = server();
        assert_eq!(s.power_w(0.0), 76.0);
        s.apply_setting(ServerSetting::max_sprint());
        assert!((s.power_w(1.0) - 155.0).abs() < 1e-9);
        assert!(s.power_w(0.5) < 155.0);
        assert!((s.planned_power_w(ServerSetting::normal()) - 99.7).abs() < 0.5);
    }

    #[test]
    fn power_cycle_draws_nothing_down_and_reboots_into_normal() {
        let mut s = server();
        s.apply_setting(ServerSetting::max_sprint());
        assert!(s.is_powered());
        s.set_powered(false);
        assert!(!s.is_powered());
        assert_eq!(s.power_w(1.0), 0.0, "a dead server draws nothing");
        s.set_powered(true);
        assert_eq!(
            s.setting(),
            ServerSetting::normal(),
            "the pre-crash sprint setting is volatile"
        );
        assert_eq!(s.power_w(0.0), 76.0);
    }

    #[test]
    fn grid_only_provisioning() {
        let s = Server::new(
            3,
            Provisioning::GridOnly,
            PowerModel::from_max_sprint_power(146.0),
        );
        assert!(!s.is_green());
        assert_eq!(s.provisioning(), Provisioning::GridOnly);
    }
}
