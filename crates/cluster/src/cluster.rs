//! The 10-server prototype cluster with its green-provisioned subset.

use crate::power_model::PowerModel;
use crate::server::{Provisioning, Server};

/// The paper's cluster size.
pub const PAPER_CLUSTER_SIZE: usize = 10;

/// The prototype cluster: `n` servers, the first `n_green` of which hang
/// off the green bus (renewable + battery), the rest utility-dependent.
#[derive(Debug)]
pub struct Cluster {
    servers: Vec<Server>,
}

impl Cluster {
    /// Build a cluster of `n` servers with `n_green` green-provisioned,
    /// all hosting an application with the given power model.
    pub fn new(n: usize, n_green: usize, power_model: PowerModel) -> Self {
        assert!(n_green <= n, "green subset larger than cluster");
        let servers = (0..n)
            .map(|id| {
                let prov = if id < n_green {
                    Provisioning::Green
                } else {
                    Provisioning::GridOnly
                };
                Server::new(id, prov, power_model)
            })
            .collect();
        Cluster { servers }
    }

    /// The paper's prototype: 10 servers with `n_green` on the green bus
    /// (3 for the 30 % configurations, 2 for SRE).
    pub fn paper_prototype(n_green: usize, power_model: PowerModel) -> Self {
        Self::new(PAPER_CLUSTER_SIZE, n_green, power_model)
    }

    /// All servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Mutable access to all servers.
    pub fn servers_mut(&mut self) -> &mut [Server] {
        &mut self.servers
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True if the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Indices of the green-provisioned servers.
    pub fn green_ids(&self) -> Vec<usize> {
        self.servers
            .iter()
            .filter(|s| s.is_green())
            .map(Server::id)
            .collect()
    }

    /// Number of green-provisioned servers.
    pub fn green_count(&self) -> usize {
        self.servers.iter().filter(|s| s.is_green()).count()
    }

    /// Indices of the green servers currently powered (the capacity a
    /// degraded-fleet plan can actually spread load across).
    pub fn live_green_ids(&self) -> Vec<usize> {
        self.servers
            .iter()
            .filter(|s| s.is_green() && s.is_powered())
            .map(Server::id)
            .collect()
    }

    /// Number of powered green servers.
    pub fn live_green_count(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.is_green() && s.is_powered())
            .count()
    }

    /// Aggregate power (W) of the green subset at a common utilization.
    pub fn green_power_w(&self, utilization: f64) -> f64 {
        self.servers
            .iter()
            .filter(|s| s.is_green())
            .map(|s| s.power_w(utilization))
            .sum()
    }

    /// Aggregate power (W) of the whole cluster at a common utilization.
    pub fn total_power_w(&self, utilization: f64) -> f64 {
        self.servers.iter().map(|s| s.power_w(utilization)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::ServerSetting;

    fn cluster() -> Cluster {
        Cluster::paper_prototype(3, PowerModel::from_max_sprint_power(155.0))
    }

    #[test]
    fn paper_prototype_shape() {
        let c = cluster();
        assert_eq!(c.len(), 10);
        assert_eq!(c.green_count(), 3);
        assert_eq!(c.green_ids(), vec![0, 1, 2]);
        assert!(!c.is_empty());
    }

    #[test]
    fn aggregate_power_at_normal_hits_grid_budget() {
        let mut c = cluster();
        for s in c.servers_mut() {
            s.apply_setting(ServerSetting::normal());
        }
        // 10 servers fully loaded at Normal ≈ 1000 W grid budget (§IV).
        let p = c.total_power_w(1.0);
        assert!((p - 1000.0).abs() < 15.0, "total={p}");
    }

    #[test]
    fn full_sprint_cluster_power_matches_paper() {
        let mut c = cluster();
        for s in c.servers_mut() {
            s.apply_setting(ServerSetting::max_sprint());
        }
        // Paper §IV-A: the saturated 12-core cluster hits 1550 W.
        let p = c.total_power_w(1.0);
        assert!((p - 1550.0).abs() < 1.0, "total={p}");
        // The 3 green servers at full sprint: 465 W, under the 635.25 W
        // peak green supply.
        let g = c.green_power_w(1.0);
        assert!((g - 465.0).abs() < 1.0, "green={g}");
    }

    #[test]
    fn downed_green_servers_leave_the_live_set_and_the_power_books() {
        let mut c = cluster();
        for s in c.servers_mut() {
            s.apply_setting(ServerSetting::max_sprint());
        }
        let full = c.green_power_w(1.0);
        c.servers_mut()[1].set_powered(false);
        assert_eq!(c.live_green_count(), 2);
        assert_eq!(c.live_green_ids(), vec![0, 2]);
        assert_eq!(c.green_count(), 3, "provisioning is not liveness");
        let degraded = c.green_power_w(1.0);
        assert!(
            (full - degraded - 155.0).abs() < 1.0,
            "dead server still drawing: full={full} degraded={degraded}"
        );
        c.servers_mut()[1].set_powered(true);
        assert_eq!(c.live_green_count(), 3);
    }

    #[test]
    #[should_panic(expected = "green subset")]
    fn rejects_oversized_green_subset() {
        Cluster::new(2, 3, PowerModel::from_max_sprint_power(155.0));
    }
}
