//! The calibrated server power model.
//!
//! Calibration anchors from the paper (§IV):
//!
//! * idle power ≈ 76 W;
//! * the grid budget assumes 100 W per server at Normal mode (1000 W for
//!   10 servers), i.e. a fully loaded Normal server draws ≈ 100 W;
//! * maximum sprint power: 155 W (SPECjbb), 156 W (Web-Search), 146 W
//!   (Memcached).
//!
//! A linear-in-`c·f` dynamic term fits those anchors almost exactly: the
//! required dynamic range is 79 W (max) vs 24 W (Normal) — a ratio of 3.29,
//! and 2× cores × 1.67× frequency = 3.33. DVFS on this part of the Xeon
//! frequency range runs at a nearly flat voltage, so near-linear dynamic
//! power in frequency is also physically reasonable.
//!
//! `P(S, u) = idle + u · cores · κ · (f / f_max)`
//!
//! where `u ∈ [0,1]` is utilization of the active cores and κ is the
//! per-application full-speed per-core dynamic power.

use crate::dvfs::{ServerSetting, MAX_CORES};
use serde::{Deserialize, Serialize};

/// The paper's idle power (W).
pub const PAPER_IDLE_W: f64 = 76.0;

/// Per-server power model for one application class.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle (all management overhead, fans, DRAM refresh …) watts.
    pub idle_w: f64,
    /// Dynamic watts per fully-utilized core at maximum frequency.
    pub kappa_w_per_core: f64,
}

impl PowerModel {
    /// Build a model from the application's measured maximum sprint power
    /// (12 cores, 2.0 GHz, fully loaded): `κ = (P_max − idle) / 12`.
    pub fn from_max_sprint_power(max_sprint_w: f64) -> Self {
        assert!(max_sprint_w > PAPER_IDLE_W);
        PowerModel {
            idle_w: PAPER_IDLE_W,
            kappa_w_per_core: (max_sprint_w - PAPER_IDLE_W) / MAX_CORES as f64,
        }
    }

    /// Server power (W) at a given setting and utilization `u ∈ [0, 1]`.
    pub fn power_w(&self, setting: ServerSetting, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_w + u * setting.cores as f64 * self.kappa_w_per_core * setting.freq_fraction()
    }

    /// Power at full utilization (the planning value the PMK budgets with;
    /// the paper measures `LoadPower` at the served intensity, which peaks
    /// at saturation).
    pub fn full_load_power_w(&self, setting: ServerSetting) -> f64 {
        self.power_w(setting, 1.0)
    }

    /// The maximum power this model can draw (max sprint, fully loaded).
    pub fn max_power_w(&self) -> f64 {
        self.full_load_power_w(ServerSetting::max_sprint())
    }

    /// The cheapest (Normal-mode, idle) draw.
    pub fn min_power_w(&self) -> f64 {
        self.idle_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specjbb_calibration_anchors() {
        // SPECjbb peaks at 155 W (paper §IV).
        let m = PowerModel::from_max_sprint_power(155.0);
        assert!((m.max_power_w() - 155.0).abs() < 1e-9);
        // Normal fully loaded lands near the 100 W grid-budget share.
        let normal_full = m.full_load_power_w(ServerSetting::normal());
        assert!(
            (normal_full - 100.0).abs() < 2.0,
            "normal full load = {normal_full} W"
        );
        // Idle matches the measured 76 W.
        assert_eq!(m.power_w(ServerSetting::normal(), 0.0), 76.0);
    }

    #[test]
    fn all_three_apps_hit_their_peaks() {
        for (peak, name) in [
            (155.0, "specjbb"),
            (156.0, "websearch"),
            (146.0, "memcached"),
        ] {
            let m = PowerModel::from_max_sprint_power(peak);
            assert!((m.max_power_w() - peak).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn power_is_monotone_in_every_knob() {
        let m = PowerModel::from_max_sprint_power(155.0);
        // Cores.
        let p6 = m.full_load_power_w(ServerSetting::new(6, 4));
        let p12 = m.full_load_power_w(ServerSetting::new(12, 4));
        assert!(p12 > p6);
        // Frequency.
        let f0 = m.full_load_power_w(ServerSetting::new(9, 0));
        let f8 = m.full_load_power_w(ServerSetting::new(9, 8));
        assert!(f8 > f0);
        // Utilization.
        assert!(m.power_w(ServerSetting::max_sprint(), 0.5) < m.max_power_w());
    }

    #[test]
    fn utilization_is_clamped() {
        let m = PowerModel::from_max_sprint_power(155.0);
        assert_eq!(m.power_w(ServerSetting::normal(), -1.0), m.idle_w);
        assert_eq!(m.power_w(ServerSetting::max_sprint(), 2.0), m.max_power_w());
    }

    #[test]
    fn min_power_is_idle() {
        let m = PowerModel::from_max_sprint_power(146.0);
        assert_eq!(m.min_power_w(), PAPER_IDLE_W);
    }

    #[test]
    #[should_panic]
    fn rejects_peak_below_idle() {
        PowerModel::from_max_sprint_power(50.0);
    }
}
