//! CPU-affinity masks — the `taskset` half of the prototype's control
//! plane ("we use cpufreq to scale frequency and taskset to redirect
//! workload threads to right cores", paper §IV).
//!
//! When sprinting brings cores online or takes them offline, the workload
//! threads must be pinned onto exactly the live set; the mask type here
//! renders the same hexadecimal form `taskset` consumes, so a deployment
//! can shell out verbatim.

use crate::dvfs::{ServerSetting, MAX_CORES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A CPU set over the server's possible cores (up to 12 in the prototype,
/// with capacity for larger parts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuMask(u64);

impl CpuMask {
    /// The empty mask.
    pub const EMPTY: CpuMask = CpuMask(0);

    /// A mask of the first `n` CPUs (the convention the control plane
    /// uses: cores are brought online in index order).
    pub fn first_n(n: u8) -> Self {
        assert!(n as u32 <= u64::BITS, "mask supports up to 64 CPUs");
        if n == 0 {
            CpuMask(0)
        } else {
            CpuMask(u64::MAX >> (u64::BITS - n as u32))
        }
    }

    /// The mask matching a sprint setting's active cores.
    pub fn for_setting(setting: ServerSetting) -> Self {
        Self::first_n(setting.cores)
    }

    /// Raw bits.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Number of CPUs in the set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether `cpu` is in the set.
    pub fn contains(self, cpu: u8) -> bool {
        cpu < 64 && self.0 & (1 << cpu) != 0
    }

    /// Add a CPU.
    pub fn with(self, cpu: u8) -> Self {
        assert!(cpu < 64);
        CpuMask(self.0 | (1 << cpu))
    }

    /// Remove a CPU.
    pub fn without(self, cpu: u8) -> Self {
        CpuMask(self.0 & !(1u64 << (cpu as u32 % 64)))
    }

    /// The `taskset`-compatible hexadecimal rendering (e.g. `0xfff` for
    /// all 12 prototype cores).
    pub fn to_taskset_hex(self) -> String {
        format!("{:#x}", self.0)
    }

    /// Parse a `taskset`-style hex mask (`0xfff` or `fff`).
    pub fn from_taskset_hex(s: &str) -> Option<Self> {
        let digits = s.trim().trim_start_matches("0x");
        u64::from_str_radix(digits, 16).ok().map(CpuMask)
    }

    /// The CPUs this mask would migrate threads *off of* when shrinking
    /// to `target` (the cores about to be offlined).
    pub fn evacuating_to(self, target: CpuMask) -> CpuMask {
        CpuMask(self.0 & !target.0)
    }
}

impl fmt::Display for CpuMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_taskset_hex())
    }
}

/// The list form `taskset -c` accepts (e.g. `0-5` or `0-3,6`).
pub fn cpu_list(mask: CpuMask) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut run_start: Option<u8> = None;
    for cpu in 0..=MAX_CORES {
        let inside = cpu < MAX_CORES && mask.contains(cpu);
        match (inside, run_start) {
            (true, None) => run_start = Some(cpu),
            (false, Some(s)) => {
                let end = cpu - 1;
                parts.push(if s == end {
                    s.to_string()
                } else {
                    format!("{s}-{end}")
                });
                run_start = None;
            }
            _ => {}
        }
    }
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_and_setting_masks() {
        assert_eq!(CpuMask::first_n(0), CpuMask::EMPTY);
        assert_eq!(CpuMask::first_n(6).bits(), 0x3f);
        assert_eq!(CpuMask::for_setting(ServerSetting::normal()).count(), 6);
        assert_eq!(
            CpuMask::for_setting(ServerSetting::max_sprint()).to_taskset_hex(),
            "0xfff"
        );
    }

    #[test]
    fn contains_with_without() {
        let m = CpuMask::first_n(6);
        assert!(m.contains(0) && m.contains(5));
        assert!(!m.contains(6));
        assert!(m.with(7).contains(7));
        assert!(!m.without(0).contains(0));
        assert_eq!(m.without(0).count(), 5);
    }

    #[test]
    fn hex_roundtrip() {
        for n in [0u8, 1, 6, 12] {
            let m = CpuMask::first_n(n);
            assert_eq!(CpuMask::from_taskset_hex(&m.to_taskset_hex()), Some(m));
        }
        assert_eq!(CpuMask::from_taskset_hex("fff"), Some(CpuMask::first_n(12)));
        assert_eq!(CpuMask::from_taskset_hex("zzz"), None);
    }

    #[test]
    fn evacuation_set() {
        let sprint = CpuMask::for_setting(ServerSetting::max_sprint());
        let normal = CpuMask::for_setting(ServerSetting::normal());
        let evict = sprint.evacuating_to(normal);
        assert_eq!(evict.count(), 6);
        assert!(evict.contains(11) && !evict.contains(0));
        // Growing evacuates nothing.
        assert_eq!(normal.evacuating_to(sprint), CpuMask::EMPTY);
    }

    #[test]
    fn cpu_list_rendering() {
        assert_eq!(cpu_list(CpuMask::first_n(6)), "0-5");
        assert_eq!(cpu_list(CpuMask::first_n(1)), "0");
        assert_eq!(cpu_list(CpuMask::EMPTY), "");
        let gappy = CpuMask::first_n(4).with(6);
        assert_eq!(cpu_list(gappy), "0-3,6");
    }

    #[test]
    fn full_prototype_mask() {
        assert_eq!(cpu_list(CpuMask::first_n(12)), "0-11");
    }
}
