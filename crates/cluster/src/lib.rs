//! # gs-cluster — the server and cluster model
//!
//! Models the paper's prototype hardware (§IV): 10 servers, each with two
//! 6-core Intel Xeon E5-2620 processors (12 cores), 9 DVFS states from
//! 1.2 GHz to 2.0 GHz, 76 W idle power, and sprinting that scales the core
//! count from 6 (Normal) to 12.
//!
//! * [`dvfs`] — frequency levels and the two-dimensional sprint-setting
//!   space `S = cores × frequency` (paper §III-B).
//! * [`power_model`] — the calibrated server power model.
//! * [`control`] — the control plane: a trait for applying a setting to a
//!   server with a simulated backend and a sysfs-format backend (the
//!   paper's `cpufreq` + `taskset` knobs).
//! * [`server`] / [`cluster`] — server state and the 10-node topology with
//!   its green-provisioned subset.

pub mod affinity;
pub mod cluster;
pub mod control;
pub mod dvfs;
pub mod power_model;
pub mod server;

pub use affinity::CpuMask;
pub use cluster::Cluster;
pub use control::{
    apply_with_retry, read_with_retry, ControlError, FlakyControl, RetryPolicy, ServerControl,
    SimControl, SysfsControl,
};
pub use dvfs::{ServerSetting, FREQ_LEVELS_KHZ, MAX_CORES, NORMAL_CORES, NUM_FREQ_LEVELS};
pub use power_model::PowerModel;
pub use server::Server;
