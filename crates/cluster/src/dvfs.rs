//! DVFS levels and the sprint-setting space.
//!
//! The prototype's Xeon E5-2620 exposes 9 frequency states and sprinting
//! scales the active core count from 6 to 12 (paper §IV). A *sprint
//! setting* `S_j` is the pair (core count, frequency level), ordered from
//! `S0` = Normal (6 cores @ 1.2 GHz) to `Sr` = maximum sprint (12 cores @
//! 2.0 GHz) — paper §III-B.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The nine DVFS states of the prototype, in kHz (1.2 → 2.0 GHz).
pub const FREQ_LEVELS_KHZ: [u32; 9] = [
    1_200_000, 1_300_000, 1_400_000, 1_500_000, 1_600_000, 1_700_000, 1_800_000, 1_900_000,
    2_000_000,
];

/// Number of DVFS states.
pub const NUM_FREQ_LEVELS: usize = FREQ_LEVELS_KHZ.len();

/// Core count in Normal (non-sprinting) mode.
pub const NORMAL_CORES: u8 = 6;

/// Core count at maximum sprint.
pub const MAX_CORES: u8 = 12;

/// The maximum frequency in GHz (used to normalize frequency scaling).
pub const MAX_FREQ_GHZ: f64 = 2.0;

/// A sprint setting: active core count and frequency-level index.
///
/// # Example
///
/// ```
/// use gs_cluster::ServerSetting;
/// let normal = ServerSetting::normal();       // 6 cores @ 1.2 GHz
/// let sprint = ServerSetting::max_sprint();   // 12 cores @ 2.0 GHz
/// assert_eq!(ServerSetting::all().len(), 63); // 7 core counts x 9 DVFS states
/// assert!(sprint.is_sprinting() && !normal.is_sprinting());
/// ```

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServerSetting {
    /// Active cores, `NORMAL_CORES ..= MAX_CORES`.
    pub cores: u8,
    /// Index into [`FREQ_LEVELS_KHZ`].
    pub freq_idx: u8,
}

impl ServerSetting {
    /// Construct a setting, validating the ranges.
    pub fn new(cores: u8, freq_idx: u8) -> Self {
        assert!(
            (NORMAL_CORES..=MAX_CORES).contains(&cores),
            "core count {cores} out of range"
        );
        assert!(
            (freq_idx as usize) < NUM_FREQ_LEVELS,
            "frequency index {freq_idx} out of range"
        );
        ServerSetting { cores, freq_idx }
    }

    /// `S0`: Normal mode — 6 cores at the lowest frequency (1.2 GHz).
    pub const fn normal() -> Self {
        ServerSetting {
            cores: NORMAL_CORES,
            freq_idx: 0,
        }
    }

    /// `Sr`: maximum sprint — 12 cores at 2.0 GHz.
    pub const fn max_sprint() -> Self {
        ServerSetting {
            cores: MAX_CORES,
            freq_idx: (NUM_FREQ_LEVELS - 1) as u8,
        }
    }

    /// Frequency of this setting in GHz.
    pub fn freq_ghz(&self) -> f64 {
        FREQ_LEVELS_KHZ[self.freq_idx as usize] as f64 / 1e6
    }

    /// Frequency of this setting in kHz (the sysfs unit).
    pub fn freq_khz(&self) -> u32 {
        FREQ_LEVELS_KHZ[self.freq_idx as usize]
    }

    /// Frequency as a fraction of the maximum (`f / 2.0 GHz`).
    pub fn freq_fraction(&self) -> f64 {
        self.freq_ghz() / MAX_FREQ_GHZ
    }

    /// True if this setting exceeds Normal mode in either dimension.
    pub fn is_sprinting(&self) -> bool {
        *self != Self::normal()
    }

    /// Every setting in the two-dimensional space `S`, ordered by
    /// (cores, frequency) — 7 core counts × 9 frequencies = 63 actions.
    pub fn all() -> Vec<ServerSetting> {
        let mut v = Vec::with_capacity((MAX_CORES - NORMAL_CORES + 1) as usize * NUM_FREQ_LEVELS);
        for cores in NORMAL_CORES..=MAX_CORES {
            for f in 0..NUM_FREQ_LEVELS as u8 {
                v.push(ServerSetting::new(cores, f));
            }
        }
        v
    }

    /// The *Parallel* strategy's one-dimensional slice: frequency pinned to
    /// maximum, cores varying (paper §III-B).
    pub fn parallel_axis() -> Vec<ServerSetting> {
        (NORMAL_CORES..=MAX_CORES)
            .map(|c| ServerSetting::new(c, (NUM_FREQ_LEVELS - 1) as u8))
            .collect()
    }

    /// The *Pacing* strategy's one-dimensional slice: cores pinned to
    /// maximum, frequency varying.
    pub fn pacing_axis() -> Vec<ServerSetting> {
        (0..NUM_FREQ_LEVELS as u8)
            .map(|f| ServerSetting::new(MAX_CORES, f))
            .collect()
    }

    /// A stable dense index for lookup tables (Q-learning actions).
    pub fn action_index(&self) -> usize {
        (self.cores - NORMAL_CORES) as usize * NUM_FREQ_LEVELS + self.freq_idx as usize
    }

    /// Inverse of [`Self::action_index`].
    pub fn from_action_index(i: usize) -> Self {
        let cores = NORMAL_CORES + (i / NUM_FREQ_LEVELS) as u8;
        let freq = (i % NUM_FREQ_LEVELS) as u8;
        ServerSetting::new(cores, freq)
    }
}

impl Default for ServerSetting {
    fn default() -> Self {
        Self::normal()
    }
}

impl fmt::Display for ServerSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c@{:.1}GHz", self.cores, self.freq_ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_and_max_match_paper() {
        let n = ServerSetting::normal();
        assert_eq!(n.cores, 6);
        assert!((n.freq_ghz() - 1.2).abs() < 1e-9);
        let m = ServerSetting::max_sprint();
        assert_eq!(m.cores, 12);
        assert!((m.freq_ghz() - 2.0).abs() < 1e-9);
        assert!(!n.is_sprinting());
        assert!(m.is_sprinting());
    }

    #[test]
    fn nine_freq_states() {
        assert_eq!(NUM_FREQ_LEVELS, 9);
        let ghz: Vec<f64> = (0..9)
            .map(|i| ServerSetting::new(6, i).freq_ghz())
            .collect();
        assert!((ghz[0] - 1.2).abs() < 1e-9);
        assert!((ghz[8] - 2.0).abs() < 1e-9);
        // Monotone, 0.1 GHz steps.
        for w in ghz.windows(2) {
            assert!((w[1] - w[0] - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn setting_space_has_63_actions() {
        let all = ServerSetting::all();
        assert_eq!(all.len(), 63);
        // First is Normal, last is max sprint.
        assert_eq!(all[0], ServerSetting::normal());
        assert_eq!(*all.last().unwrap(), ServerSetting::max_sprint());
        // Indices are a bijection.
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.action_index(), i);
            assert_eq!(ServerSetting::from_action_index(i), *s);
        }
    }

    #[test]
    fn strategy_axes() {
        let par = ServerSetting::parallel_axis();
        assert_eq!(par.len(), 7);
        assert!(par.iter().all(|s| (s.freq_ghz() - 2.0).abs() < 1e-9));
        let pac = ServerSetting::pacing_axis();
        assert_eq!(pac.len(), 9);
        assert!(pac.iter().all(|s| s.cores == 12));
    }

    #[test]
    fn freq_fraction() {
        assert!((ServerSetting::normal().freq_fraction() - 0.6).abs() < 1e-9);
        assert!((ServerSetting::max_sprint().freq_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn rejects_too_few_cores() {
        ServerSetting::new(5, 0);
    }

    #[test]
    #[should_panic(expected = "frequency index")]
    fn rejects_bad_freq() {
        ServerSetting::new(6, 9);
    }

    #[test]
    fn display() {
        assert_eq!(ServerSetting::max_sprint().to_string(), "12c@2.0GHz");
    }
}
