//! The server control plane.
//!
//! The prototype "uses `cpufreq` to scale frequency and `taskset` to
//! redirect workload threads to right cores" (paper §IV). We expose both
//! knobs behind the [`ServerControl`] trait with two backends:
//!
//! * [`SimControl`] — an in-memory backend used by the simulator; it also
//!   counts transitions, since core on/off and P-state changes are not free
//!   on real machines.
//! * [`SysfsControl`] — a backend that speaks the Linux cpufreq/hotplug
//!   sysfs file formats (`cpuN/online`, `cpuN/cpufreq/scaling_setspeed`,
//!   `scaling_cur_freq`, `scaling_available_frequencies`) rooted at an
//!   arbitrary directory. Rooting at `/sys/devices/system/cpu` drives real
//!   hardware; tests root it at a fake tree.

use crate::dvfs::{ServerSetting, FREQ_LEVELS_KHZ, MAX_CORES, NUM_FREQ_LEVELS};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Errors from applying or reading a server setting.
#[derive(Debug)]
pub enum ControlError {
    /// An I/O failure against the sysfs tree.
    Io(io::Error),
    /// The sysfs tree holds a value the model can't represent.
    Unrepresentable(String),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::Io(e) => write!(f, "control I/O error: {e}"),
            ControlError::Unrepresentable(s) => write!(f, "unrepresentable state: {s}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<io::Error> for ControlError {
    fn from(e: io::Error) -> Self {
        ControlError::Io(e)
    }
}

/// A server's sprint-setting control plane.
pub trait ServerControl {
    /// Apply a sprint setting (bring cores online/offline, set frequency).
    fn apply(&mut self, setting: ServerSetting) -> Result<(), ControlError>;
    /// Read back the currently applied setting.
    fn read(&self) -> Result<ServerSetting, ControlError>;
}

/// In-memory control backend for simulation.
#[derive(Debug, Clone)]
pub struct SimControl {
    current: ServerSetting,
    transitions: u64,
    core_toggles: u64,
}

impl Default for SimControl {
    fn default() -> Self {
        Self::new()
    }
}

impl SimControl {
    /// A simulated server starting in Normal mode.
    pub fn new() -> Self {
        SimControl {
            current: ServerSetting::normal(),
            transitions: 0,
            core_toggles: 0,
        }
    }

    /// Number of `apply` calls that changed the setting.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total cores brought online or offline across all transitions.
    pub fn core_toggles(&self) -> u64 {
        self.core_toggles
    }
}

impl ServerControl for SimControl {
    fn apply(&mut self, setting: ServerSetting) -> Result<(), ControlError> {
        if setting != self.current {
            self.transitions += 1;
            self.core_toggles += setting.cores.abs_diff(self.current.cores) as u64;
            self.current = setting;
        }
        Ok(())
    }

    fn read(&self) -> Result<ServerSetting, ControlError> {
        Ok(self.current)
    }
}

/// Sysfs-format control backend.
///
/// Layout under `root` (one directory per logical CPU):
///
/// ```text
/// cpu0/online                                  "0" | "1"
/// cpu0/cpufreq/scaling_available_frequencies   "1200000 1300000 … 2000000"
/// cpu0/cpufreq/scaling_setspeed                target kHz (written)
/// cpu0/cpufreq/scaling_cur_freq                current kHz (read)
/// ```
///
/// Cores are brought online in index order; like `taskset` pinning, the
/// first `cores` CPUs host the workload. cpu0 is never offlined (Linux
/// forbids it).
#[derive(Debug, Clone)]
pub struct SysfsControl {
    root: PathBuf,
}

impl SysfsControl {
    /// Control a sysfs tree rooted at `root` (e.g.
    /// `/sys/devices/system/cpu` on real hardware).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        SysfsControl { root: root.into() }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Create a fake sysfs tree under `root` with `MAX_CORES` CPUs, all
    /// online at the lowest frequency — for tests and dry runs.
    pub fn create_fake_tree(root: impl AsRef<Path>) -> io::Result<SysfsControl> {
        let root = root.as_ref();
        for cpu in 0..MAX_CORES {
            let cpufreq = root.join(format!("cpu{cpu}")).join("cpufreq");
            fs::create_dir_all(&cpufreq)?;
            fs::write(root.join(format!("cpu{cpu}/online")), "1")?;
            let freqs: Vec<String> = FREQ_LEVELS_KHZ.iter().map(|f| f.to_string()).collect();
            fs::write(
                cpufreq.join("scaling_available_frequencies"),
                freqs.join(" "),
            )?;
            fs::write(
                cpufreq.join("scaling_setspeed"),
                FREQ_LEVELS_KHZ[0].to_string(),
            )?;
            fs::write(
                cpufreq.join("scaling_cur_freq"),
                FREQ_LEVELS_KHZ[0].to_string(),
            )?;
        }
        Ok(SysfsControl::new(root))
    }

    fn cpu_dir(&self, cpu: u8) -> PathBuf {
        self.root.join(format!("cpu{cpu}"))
    }

    fn write_file(&self, path: &Path, value: &str) -> Result<(), ControlError> {
        fs::write(path, value).map_err(ControlError::from)
    }

    fn read_trimmed(&self, path: &Path) -> Result<String, ControlError> {
        Ok(fs::read_to_string(path)?.trim().to_string())
    }
}

impl ServerControl for SysfsControl {
    fn apply(&mut self, setting: ServerSetting) -> Result<(), ControlError> {
        // Bring the first `cores` CPUs online, the rest offline. cpu0 has
        // no writable online file on Linux; skip it (always online).
        for cpu in 0..MAX_CORES {
            let want_online = cpu < setting.cores;
            if cpu > 0 {
                self.write_file(
                    &self.cpu_dir(cpu).join("online"),
                    if want_online { "1" } else { "0" },
                )?;
            }
            if want_online {
                let khz = setting.freq_khz().to_string();
                let freq_dir = self.cpu_dir(cpu).join("cpufreq");
                self.write_file(&freq_dir.join("scaling_setspeed"), &khz)?;
                // The fake tree mirrors setspeed into cur_freq; on real
                // hardware the governor does this.
                let cur = freq_dir.join("scaling_cur_freq");
                if cur.exists() {
                    self.write_file(&cur, &khz)?;
                }
            }
        }
        Ok(())
    }

    fn read(&self) -> Result<ServerSetting, ControlError> {
        let mut cores = 1u8; // cpu0 is always online
        for cpu in 1..MAX_CORES {
            let online = self.read_trimmed(&self.cpu_dir(cpu).join("online"))?;
            if online == "1" {
                cores += 1;
            }
        }
        let khz: u32 = self
            .read_trimmed(&self.cpu_dir(0).join("cpufreq/scaling_cur_freq"))?
            .parse()
            .map_err(|e| ControlError::Unrepresentable(format!("bad kHz value: {e}")))?;
        let freq_idx = FREQ_LEVELS_KHZ
            .iter()
            .position(|&f| f == khz)
            .ok_or_else(|| ControlError::Unrepresentable(format!("unknown frequency {khz} kHz")))?;
        if !(crate::dvfs::NORMAL_CORES..=MAX_CORES).contains(&cores) {
            return Err(ControlError::Unrepresentable(format!(
                "online core count {cores} outside the sprint range"
            )));
        }
        debug_assert!(freq_idx < NUM_FREQ_LEVELS);
        Ok(ServerSetting::new(cores, freq_idx as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_control_tracks_transitions() {
        let mut c = SimControl::new();
        assert_eq!(c.read().unwrap(), ServerSetting::normal());
        c.apply(ServerSetting::max_sprint()).unwrap();
        assert_eq!(c.read().unwrap(), ServerSetting::max_sprint());
        assert_eq!(c.transitions(), 1);
        assert_eq!(c.core_toggles(), 6);
        // Re-applying the same setting is free.
        c.apply(ServerSetting::max_sprint()).unwrap();
        assert_eq!(c.transitions(), 1);
        c.apply(ServerSetting::new(9, 4)).unwrap();
        assert_eq!(c.core_toggles(), 9);
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gs-sysfs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sysfs_roundtrip() {
        let root = temp_root("roundtrip");
        let mut c = SysfsControl::create_fake_tree(&root).unwrap();
        // Initial tree: all 12 online at 1.2 GHz → reads as 12c@1.2.
        assert_eq!(c.read().unwrap(), ServerSetting::new(12, 0));
        for setting in [
            ServerSetting::normal(),
            ServerSetting::new(9, 4),
            ServerSetting::max_sprint(),
        ] {
            c.apply(setting).unwrap();
            assert_eq!(c.read().unwrap(), setting, "after applying {setting}");
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sysfs_writes_expected_files() {
        let root = temp_root("files");
        let mut c = SysfsControl::create_fake_tree(&root).unwrap();
        c.apply(ServerSetting::new(8, 3)).unwrap();
        // cpu7 online, cpu8 offline.
        assert_eq!(fs::read_to_string(root.join("cpu7/online")).unwrap(), "1");
        assert_eq!(fs::read_to_string(root.join("cpu8/online")).unwrap(), "0");
        // Frequency written in kHz to online cores.
        assert_eq!(
            fs::read_to_string(root.join("cpu0/cpufreq/scaling_setspeed")).unwrap(),
            "1500000"
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sysfs_missing_tree_errors() {
        let c = SysfsControl::new("/nonexistent/gs-test");
        assert!(matches!(c.read(), Err(ControlError::Io(_))));
    }

    #[test]
    fn sysfs_rejects_unknown_frequency() {
        let root = temp_root("badfreq");
        let c = SysfsControl::create_fake_tree(&root).unwrap();
        fs::write(root.join("cpu0/cpufreq/scaling_cur_freq"), "999000").unwrap();
        match c.read() {
            Err(ControlError::Unrepresentable(msg)) => assert!(msg.contains("999000")),
            other => panic!("expected Unrepresentable, got {other:?}"),
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sysfs_rejects_out_of_range_core_count() {
        let root = temp_root("badcores");
        let c = SysfsControl::create_fake_tree(&root).unwrap();
        // Offline all but cpu0..=2 (3 cores, below the 6-core floor).
        for cpu in 3..MAX_CORES {
            fs::write(root.join(format!("cpu{cpu}/online")), "0").unwrap();
        }
        assert!(matches!(c.read(), Err(ControlError::Unrepresentable(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn control_error_display() {
        let e = ControlError::Unrepresentable("x".into());
        assert!(e.to_string().contains("unrepresentable"));
    }
}
