//! The server control plane.
//!
//! The prototype "uses `cpufreq` to scale frequency and `taskset` to
//! redirect workload threads to right cores" (paper §IV). We expose both
//! knobs behind the [`ServerControl`] trait with two backends:
//!
//! * [`SimControl`] — an in-memory backend used by the simulator; it also
//!   counts transitions, since core on/off and P-state changes are not free
//!   on real machines.
//! * [`SysfsControl`] — a backend that speaks the Linux cpufreq/hotplug
//!   sysfs file formats (`cpuN/online`, `cpuN/cpufreq/scaling_setspeed`,
//!   `scaling_cur_freq`, `scaling_available_frequencies`) rooted at an
//!   arbitrary directory. Rooting at `/sys/devices/system/cpu` drives real
//!   hardware; tests root it at a fake tree.

use crate::dvfs::{ServerSetting, FREQ_LEVELS_KHZ, MAX_CORES, NUM_FREQ_LEVELS};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Errors from applying or reading a server setting.
#[derive(Debug)]
pub enum ControlError {
    /// An I/O failure against the sysfs tree.
    Io(io::Error),
    /// The sysfs tree holds a value the model can't represent.
    Unrepresentable(String),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::Io(e) => write!(f, "control I/O error: {e}"),
            ControlError::Unrepresentable(s) => write!(f, "unrepresentable state: {s}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<io::Error> for ControlError {
    fn from(e: io::Error) -> Self {
        ControlError::Io(e)
    }
}

impl ControlError {
    /// True if retrying the same operation could plausibly succeed.
    ///
    /// I/O failures against a sysfs tree are transient by nature — EIO on
    /// a hotplug write, an interrupted syscall, a file that appears a
    /// moment later — while [`ControlError::Unrepresentable`] means the
    /// tree holds a value the model cannot express, which no amount of
    /// retrying will fix.
    pub fn is_transient(&self) -> bool {
        matches!(self, ControlError::Io(_))
    }
}

/// Deterministic bounded-retry policy for control-plane actuation.
///
/// Backoff mirrors the supervisor's schedule (`base × 2^attempt`, exponent
/// capped at 6) so a serve-mode trace of retry timings is predictable from
/// the attempt number alone — no wall-clock state, no jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (`0` = fail fast).
    pub max_retries: u32,
    /// Backoff before retry 1, doubled per subsequent retry.
    pub base_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_delay_ms: 25,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` retries at the default 25 ms base.
    pub const fn with_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay_ms: 25,
        }
    }

    /// Delay in milliseconds before retry `attempt` (1-based): `base ×
    /// 2^min(attempt, 6)` — 50, 100, 200, … capped at `base × 64`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        self.base_delay_ms.saturating_mul(1 << attempt.min(6))
    }
}

/// Apply `setting` through `control`, retrying transient I/O failures per
/// `policy`. `sleep` receives each backoff delay in milliseconds —
/// real callers pass `std::thread::sleep`, deterministic callers (tests,
/// `--sim-time` serve) pass a recorder or no-op so the schedule is
/// observable without waiting.
///
/// Returns the number of retries consumed (`0` = first attempt landed).
/// Non-transient errors ([`ControlError::Unrepresentable`]) fail
/// immediately without retrying; exhausted retries surface the last error.
pub fn apply_with_retry<C: ServerControl + ?Sized>(
    control: &mut C,
    setting: ServerSetting,
    policy: RetryPolicy,
    sleep: &mut dyn FnMut(u64),
) -> Result<u32, ControlError> {
    let mut attempt = 0u32;
    loop {
        match control.apply(setting) {
            Ok(()) => return Ok(attempt),
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                attempt += 1;
                sleep(policy.backoff_ms(attempt));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Read the current setting through `control`, retrying transient I/O
/// failures per `policy`. Same contract as [`apply_with_retry`].
pub fn read_with_retry<C: ServerControl + ?Sized>(
    control: &C,
    policy: RetryPolicy,
    sleep: &mut dyn FnMut(u64),
) -> Result<(ServerSetting, u32), ControlError> {
    let mut attempt = 0u32;
    loop {
        match control.read() {
            Ok(s) => return Ok((s, attempt)),
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                attempt += 1;
                sleep(policy.backoff_ms(attempt));
            }
            Err(e) => return Err(e),
        }
    }
}

/// A fault-injection wrapper: fails the next *n* applies/reads with a
/// chosen [`io::ErrorKind`], then delegates to the inner backend.
///
/// Serve-mode disturbance plans arm the counters ahead of each epoch, so
/// actuation failures are deterministic in `--sim-time` runs; tests use it
/// to prove retry recovers exactly when the budget covers the failures.
#[derive(Debug)]
pub struct FlakyControl<C> {
    inner: C,
    fail_next_applies: u32,
    fail_next_reads: std::cell::Cell<u32>,
    kind: io::ErrorKind,
    failures_injected: u64,
}

impl<C> FlakyControl<C> {
    /// Wrap `inner`; no failures armed.
    pub fn new(inner: C) -> Self {
        FlakyControl {
            inner,
            fail_next_applies: 0,
            fail_next_reads: std::cell::Cell::new(0),
            kind: io::ErrorKind::Interrupted,
            failures_injected: 0,
        }
    }

    /// Fail the next `n` applies with `kind`.
    pub fn fail_applies(&mut self, n: u32, kind: io::ErrorKind) {
        self.fail_next_applies = n;
        self.kind = kind;
    }

    /// Fail the next `n` reads with `kind`.
    pub fn fail_reads(&mut self, n: u32, kind: io::ErrorKind) {
        self.fail_next_reads.set(n);
        self.kind = kind;
    }

    /// Total apply failures injected so far.
    pub fn failures_injected(&self) -> u64 {
        self.failures_injected
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: ServerControl> ServerControl for FlakyControl<C> {
    fn apply(&mut self, setting: ServerSetting) -> Result<(), ControlError> {
        if self.fail_next_applies > 0 {
            self.fail_next_applies -= 1;
            self.failures_injected += 1;
            return Err(ControlError::Io(io::Error::new(
                self.kind,
                "injected actuation fault",
            )));
        }
        self.inner.apply(setting)
    }

    fn read(&self) -> Result<ServerSetting, ControlError> {
        let left = self.fail_next_reads.get();
        if left > 0 {
            self.fail_next_reads.set(left - 1);
            return Err(ControlError::Io(io::Error::new(
                self.kind,
                "injected telemetry fault",
            )));
        }
        self.inner.read()
    }
}

/// A server's sprint-setting control plane.
pub trait ServerControl {
    /// Apply a sprint setting (bring cores online/offline, set frequency).
    fn apply(&mut self, setting: ServerSetting) -> Result<(), ControlError>;
    /// Read back the currently applied setting.
    fn read(&self) -> Result<ServerSetting, ControlError>;
}

/// In-memory control backend for simulation.
#[derive(Debug, Clone)]
pub struct SimControl {
    current: ServerSetting,
    transitions: u64,
    core_toggles: u64,
}

impl Default for SimControl {
    fn default() -> Self {
        Self::new()
    }
}

impl SimControl {
    /// A simulated server starting in Normal mode.
    pub fn new() -> Self {
        SimControl {
            current: ServerSetting::normal(),
            transitions: 0,
            core_toggles: 0,
        }
    }

    /// Number of `apply` calls that changed the setting.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total cores brought online or offline across all transitions.
    pub fn core_toggles(&self) -> u64 {
        self.core_toggles
    }
}

impl ServerControl for SimControl {
    fn apply(&mut self, setting: ServerSetting) -> Result<(), ControlError> {
        if setting != self.current {
            self.transitions += 1;
            self.core_toggles += setting.cores.abs_diff(self.current.cores) as u64;
            self.current = setting;
        }
        Ok(())
    }

    fn read(&self) -> Result<ServerSetting, ControlError> {
        Ok(self.current)
    }
}

/// Sysfs-format control backend.
///
/// Layout under `root` (one directory per logical CPU):
///
/// ```text
/// cpu0/online                                  "0" | "1"
/// cpu0/cpufreq/scaling_available_frequencies   "1200000 1300000 … 2000000"
/// cpu0/cpufreq/scaling_setspeed                target kHz (written)
/// cpu0/cpufreq/scaling_cur_freq                current kHz (read)
/// ```
///
/// Cores are brought online in index order; like `taskset` pinning, the
/// first `cores` CPUs host the workload. cpu0 is never offlined (Linux
/// forbids it).
#[derive(Debug, Clone)]
pub struct SysfsControl {
    root: PathBuf,
}

impl SysfsControl {
    /// Control a sysfs tree rooted at `root` (e.g.
    /// `/sys/devices/system/cpu` on real hardware).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        SysfsControl { root: root.into() }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Create a fake sysfs tree under `root` with `MAX_CORES` CPUs, all
    /// online at the lowest frequency — for tests and dry runs.
    pub fn create_fake_tree(root: impl AsRef<Path>) -> io::Result<SysfsControl> {
        let root = root.as_ref();
        for cpu in 0..MAX_CORES {
            let cpufreq = root.join(format!("cpu{cpu}")).join("cpufreq");
            fs::create_dir_all(&cpufreq)?;
            fs::write(root.join(format!("cpu{cpu}/online")), "1")?;
            let freqs: Vec<String> = FREQ_LEVELS_KHZ.iter().map(|f| f.to_string()).collect();
            fs::write(
                cpufreq.join("scaling_available_frequencies"),
                freqs.join(" "),
            )?;
            fs::write(
                cpufreq.join("scaling_setspeed"),
                FREQ_LEVELS_KHZ[0].to_string(),
            )?;
            fs::write(
                cpufreq.join("scaling_cur_freq"),
                FREQ_LEVELS_KHZ[0].to_string(),
            )?;
        }
        Ok(SysfsControl::new(root))
    }

    fn cpu_dir(&self, cpu: u8) -> PathBuf {
        self.root.join(format!("cpu{cpu}"))
    }

    fn write_file(&self, path: &Path, value: &str) -> Result<(), ControlError> {
        fs::write(path, value).map_err(ControlError::from)
    }

    fn read_trimmed(&self, path: &Path) -> Result<String, ControlError> {
        Ok(fs::read_to_string(path)?.trim().to_string())
    }
}

impl ServerControl for SysfsControl {
    fn apply(&mut self, setting: ServerSetting) -> Result<(), ControlError> {
        // Bring the first `cores` CPUs online, the rest offline. cpu0 has
        // no writable online file on Linux; skip it (always online).
        for cpu in 0..MAX_CORES {
            let want_online = cpu < setting.cores;
            if cpu > 0 {
                self.write_file(
                    &self.cpu_dir(cpu).join("online"),
                    if want_online { "1" } else { "0" },
                )?;
            }
            if want_online {
                let khz = setting.freq_khz().to_string();
                let freq_dir = self.cpu_dir(cpu).join("cpufreq");
                self.write_file(&freq_dir.join("scaling_setspeed"), &khz)?;
                // The fake tree mirrors setspeed into cur_freq; on real
                // hardware the governor does this.
                let cur = freq_dir.join("scaling_cur_freq");
                if cur.exists() {
                    self.write_file(&cur, &khz)?;
                }
            }
        }
        Ok(())
    }

    fn read(&self) -> Result<ServerSetting, ControlError> {
        let mut cores = 1u8; // cpu0 is always online
        for cpu in 1..MAX_CORES {
            let online = self.read_trimmed(&self.cpu_dir(cpu).join("online"))?;
            if online == "1" {
                cores += 1;
            }
        }
        let khz: u32 = self
            .read_trimmed(&self.cpu_dir(0).join("cpufreq/scaling_cur_freq"))?
            .parse()
            .map_err(|e| ControlError::Unrepresentable(format!("bad kHz value: {e}")))?;
        let freq_idx = FREQ_LEVELS_KHZ
            .iter()
            .position(|&f| f == khz)
            .ok_or_else(|| ControlError::Unrepresentable(format!("unknown frequency {khz} kHz")))?;
        if !(crate::dvfs::NORMAL_CORES..=MAX_CORES).contains(&cores) {
            return Err(ControlError::Unrepresentable(format!(
                "online core count {cores} outside the sprint range"
            )));
        }
        debug_assert!(freq_idx < NUM_FREQ_LEVELS);
        Ok(ServerSetting::new(cores, freq_idx as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_control_tracks_transitions() {
        let mut c = SimControl::new();
        assert_eq!(c.read().unwrap(), ServerSetting::normal());
        c.apply(ServerSetting::max_sprint()).unwrap();
        assert_eq!(c.read().unwrap(), ServerSetting::max_sprint());
        assert_eq!(c.transitions(), 1);
        assert_eq!(c.core_toggles(), 6);
        // Re-applying the same setting is free.
        c.apply(ServerSetting::max_sprint()).unwrap();
        assert_eq!(c.transitions(), 1);
        c.apply(ServerSetting::new(9, 4)).unwrap();
        assert_eq!(c.core_toggles(), 9);
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gs-sysfs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sysfs_roundtrip() {
        let root = temp_root("roundtrip");
        let mut c = SysfsControl::create_fake_tree(&root).unwrap();
        // Initial tree: all 12 online at 1.2 GHz → reads as 12c@1.2.
        assert_eq!(c.read().unwrap(), ServerSetting::new(12, 0));
        for setting in [
            ServerSetting::normal(),
            ServerSetting::new(9, 4),
            ServerSetting::max_sprint(),
        ] {
            c.apply(setting).unwrap();
            assert_eq!(c.read().unwrap(), setting, "after applying {setting}");
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sysfs_writes_expected_files() {
        let root = temp_root("files");
        let mut c = SysfsControl::create_fake_tree(&root).unwrap();
        c.apply(ServerSetting::new(8, 3)).unwrap();
        // cpu7 online, cpu8 offline.
        assert_eq!(fs::read_to_string(root.join("cpu7/online")).unwrap(), "1");
        assert_eq!(fs::read_to_string(root.join("cpu8/online")).unwrap(), "0");
        // Frequency written in kHz to online cores.
        assert_eq!(
            fs::read_to_string(root.join("cpu0/cpufreq/scaling_setspeed")).unwrap(),
            "1500000"
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sysfs_missing_tree_errors() {
        let c = SysfsControl::new("/nonexistent/gs-test");
        assert!(matches!(c.read(), Err(ControlError::Io(_))));
    }

    #[test]
    fn sysfs_rejects_unknown_frequency() {
        let root = temp_root("badfreq");
        let c = SysfsControl::create_fake_tree(&root).unwrap();
        fs::write(root.join("cpu0/cpufreq/scaling_cur_freq"), "999000").unwrap();
        match c.read() {
            Err(ControlError::Unrepresentable(msg)) => assert!(msg.contains("999000")),
            other => panic!("expected Unrepresentable, got {other:?}"),
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sysfs_rejects_out_of_range_core_count() {
        let root = temp_root("badcores");
        let c = SysfsControl::create_fake_tree(&root).unwrap();
        // Offline all but cpu0..=2 (3 cores, below the 6-core floor).
        for cpu in 3..MAX_CORES {
            fs::write(root.join(format!("cpu{cpu}/online")), "0").unwrap();
        }
        assert!(matches!(c.read(), Err(ControlError::Unrepresentable(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn control_error_display() {
        let e = ControlError::Unrepresentable("x".into());
        assert!(e.to_string().contains("unrepresentable"));
    }

    #[test]
    fn transience_classification() {
        assert!(ControlError::Io(io::Error::other("EIO")).is_transient());
        assert!(!ControlError::Unrepresentable("x".into()).is_transient());
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(1), 50);
        assert_eq!(p.backoff_ms(2), 100);
        assert_eq!(p.backoff_ms(3), 200);
        assert_eq!(p.backoff_ms(6), 1600);
        assert_eq!(p.backoff_ms(7), 1600); // exponent capped
        assert_eq!(p.backoff_ms(40), 1600);
    }

    #[test]
    fn retry_recovers_when_budget_covers_failures() {
        let mut c = FlakyControl::new(SimControl::new());
        c.fail_applies(2, io::ErrorKind::Interrupted);
        let mut slept = Vec::new();
        let retries = apply_with_retry(
            &mut c,
            ServerSetting::max_sprint(),
            RetryPolicy::with_retries(3),
            &mut |ms| slept.push(ms),
        )
        .unwrap();
        assert_eq!(retries, 2);
        assert_eq!(slept, vec![50, 100], "exact deterministic backoff trace");
        assert_eq!(c.inner().read().unwrap(), ServerSetting::max_sprint());
        assert_eq!(c.failures_injected(), 2);
    }

    #[test]
    fn retry_exhaustion_surfaces_last_io_error() {
        let mut c = FlakyControl::new(SimControl::new());
        c.fail_applies(10, io::ErrorKind::TimedOut);
        let mut slept = Vec::new();
        let err = apply_with_retry(
            &mut c,
            ServerSetting::max_sprint(),
            RetryPolicy::with_retries(2),
            &mut |ms| slept.push(ms),
        )
        .unwrap_err();
        assert!(matches!(err, ControlError::Io(ref e) if e.kind() == io::ErrorKind::TimedOut));
        assert_eq!(slept, vec![50, 100]);
        // The setting never landed.
        assert_eq!(c.inner().read().unwrap(), ServerSetting::normal());
    }

    #[test]
    fn unrepresentable_fails_fast_without_retry() {
        let root = temp_root("partialwrite");
        let c = SysfsControl::create_fake_tree(&root).unwrap();
        // A torn write left a truncated kHz value behind: parseable, but
        // not one of the model's frequency levels.
        fs::write(root.join("cpu0/cpufreq/scaling_cur_freq"), "15000").unwrap();
        let mut slept = Vec::new();
        let err = read_with_retry(&c, RetryPolicy::with_retries(5), &mut |ms| slept.push(ms))
            .unwrap_err();
        assert!(matches!(err, ControlError::Unrepresentable(_)));
        assert!(slept.is_empty(), "non-transient errors must not back off");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sysfs_eio_on_apply_retries_then_surfaces_typed_error() {
        let root = temp_root("eio");
        let mut c = SysfsControl::create_fake_tree(&root).unwrap();
        // Injected EIO stand-in: replace a writable control file with a
        // directory, so every write fails at the filesystem layer.
        let setspeed = root.join("cpu3/cpufreq/scaling_setspeed");
        fs::remove_file(&setspeed).unwrap();
        fs::create_dir(&setspeed).unwrap();
        let mut slept = Vec::new();
        let err = apply_with_retry(
            &mut c,
            ServerSetting::max_sprint(),
            RetryPolicy::with_retries(2),
            &mut |ms| slept.push(ms),
        )
        .unwrap_err();
        assert!(matches!(err, ControlError::Io(_)), "typed, not a panic");
        assert_eq!(slept, vec![50, 100], "bounded retry ran to exhaustion");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sysfs_transient_eio_recovers_mid_sequence() {
        let root = temp_root("eio-recover");
        let c = SysfsControl::create_fake_tree(&root).unwrap();
        let setspeed = root.join("cpu3/cpufreq/scaling_setspeed");
        fs::remove_file(&setspeed).unwrap();
        fs::create_dir(&setspeed).unwrap();
        let mut c = c;
        // First attempt fails; the sleeper "repairs" the tree, modelling a
        // transient fault that clears before the retry fires.
        let repair_at = setspeed.clone();
        let mut slept = Vec::new();
        let retries = apply_with_retry(
            &mut c,
            ServerSetting::new(9, 4),
            RetryPolicy::with_retries(3),
            &mut |ms| {
                slept.push(ms);
                if fs::remove_dir(&repair_at).is_ok() {
                    fs::write(&repair_at, "0").unwrap();
                }
            },
        )
        .unwrap();
        assert_eq!(retries, 1);
        assert_eq!(slept, vec![50]);
        assert_eq!(c.read().unwrap(), ServerSetting::new(9, 4));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn flaky_read_injection_is_bounded() {
        let mut c = FlakyControl::new(SimControl::new());
        c.fail_reads(1, io::ErrorKind::Other);
        let mut slept = Vec::new();
        let (setting, retries) =
            read_with_retry(&c, RetryPolicy::with_retries(2), &mut |ms| slept.push(ms)).unwrap();
        assert_eq!(setting, ServerSetting::normal());
        assert_eq!(retries, 1);
        assert_eq!(slept, vec![50]);
    }
}
