//! The utility-failure backup path of the paper's power hierarchy
//! (Fig. 2): an automatic transfer switch (ATS) selecting between the
//! utility substation and a diesel generator (DG).
//!
//! GreenSprint's premise makes this path interesting: during a utility
//! outage the grid-side servers ride the ATS → diesel chain (with the
//! usual start-up gap covered by UPS energy), while the *green* servers
//! keep sprinting on renewable + battery, unaffected. The resilience tests
//! exercise exactly that story.

use gs_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A standby diesel generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DieselGenerator {
    /// Rated electrical output (W).
    pub rated_w: f64,
    /// Cranking + stabilization time before the ATS can transfer.
    pub start_time: SimDuration,
    /// Fuel burn at rated load (litres/hour). Part-load burn scales with
    /// the classic 0.25 + 0.75·load fraction curve.
    pub fuel_lph_at_rated: f64,
    /// Tank capacity (litres).
    pub tank_l: f64,
    /// Fuel remaining (litres).
    fuel_l: f64,
    /// Whether the engine is running (started and not out of fuel).
    running: bool,
    /// Time spent cranking so far.
    cranked: SimDuration,
}

impl DieselGenerator {
    /// A generator with a full tank.
    pub fn new(rated_w: f64, start_time: SimDuration, fuel_lph_at_rated: f64, tank_l: f64) -> Self {
        DieselGenerator {
            rated_w,
            start_time,
            fuel_lph_at_rated,
            tank_l,
            fuel_l: tank_l,
            running: false,
            cranked: SimDuration::ZERO,
        }
    }

    /// A datacenter-scale unit sized for the prototype's 1 kW grid budget
    /// with margin: 2 kW rated, 15 s start, 200 L tank.
    pub fn paper_scale() -> Self {
        DieselGenerator::new(2_000.0, SimDuration::from_secs(15), 1.0, 200.0)
    }

    /// Fuel remaining (litres).
    pub fn fuel_l(&self) -> f64 {
        self.fuel_l
    }

    /// True once started and fueled.
    pub fn is_running(&self) -> bool {
        self.running && self.fuel_l > 0.0
    }

    /// Advance the generator by `dt` while `demand_w` is requested of it
    /// (zero when on standby). Returns the power actually delivered (W,
    /// averaged over the interval).
    pub fn advance(&mut self, demand_w: f64, dt: SimDuration) -> f64 {
        if demand_w <= 0.0 {
            // Standby: engine stays warm if running, no fuel model for idle
            // (operators shut standby units down).
            return 0.0;
        }
        // Crank first.
        let mut remaining = dt;
        if !self.running {
            let crank_left = self.start_time - self.cranked;
            if remaining < crank_left {
                self.cranked += remaining;
                return 0.0;
            }
            self.cranked = self.start_time;
            self.running = true;
            remaining = remaining - crank_left;
        }
        if self.fuel_l <= 0.0 {
            self.running = false;
            return 0.0;
        }
        let supplied_w = demand_w.min(self.rated_w);
        let load_frac = supplied_w / self.rated_w;
        let burn_lph = self.fuel_lph_at_rated * (0.25 + 0.75 * load_frac);
        let hours = remaining.as_hours_f64();
        let burn = burn_lph * hours;
        let (delivered_hours, burned) = if burn <= self.fuel_l {
            (hours, burn)
        } else {
            // Runs dry partway through the interval.
            let frac = self.fuel_l / burn;
            (hours * frac, self.fuel_l)
        };
        self.fuel_l -= burned;
        if self.fuel_l <= 0.0 {
            self.running = false;
        }
        // Average over the *requested* interval, including the crank gap.
        supplied_w * delivered_hours / dt.as_hours_f64()
    }
}

/// Which feed the ATS has selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtsSource {
    /// The utility substation.
    Utility,
    /// The diesel generator.
    Diesel,
}

/// An automatic transfer switch over (utility, diesel).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutomaticTransferSwitch {
    /// The backup unit.
    pub generator: DieselGenerator,
    selected: AtsSource,
    /// Cumulative energy served by the diesel path (Wh).
    diesel_wh: f64,
    /// Cumulative unserved energy during transfers/outages (Wh) — what a
    /// UPS layer would have to cover.
    gap_wh: f64,
}

impl AutomaticTransferSwitch {
    /// An ATS on utility power.
    pub fn new(generator: DieselGenerator) -> Self {
        AutomaticTransferSwitch {
            generator,
            selected: AtsSource::Utility,
            diesel_wh: 0.0,
            gap_wh: 0.0,
        }
    }

    /// The currently selected feed.
    pub fn selected(&self) -> AtsSource {
        self.selected
    }

    /// Energy the diesel path has served (Wh).
    pub fn diesel_wh(&self) -> f64 {
        self.diesel_wh
    }

    /// Energy demand that went unserved during transfer gaps (Wh).
    pub fn gap_wh(&self) -> f64 {
        self.gap_wh
    }

    /// Advance one interval: `utility_up` reflects the substation state,
    /// `demand_w` is the load behind the ATS. Returns the power actually
    /// delivered (W, interval average).
    pub fn advance(&mut self, utility_up: bool, demand_w: f64, dt: SimDuration) -> f64 {
        if utility_up {
            self.selected = AtsSource::Utility;
            return demand_w.max(0.0);
        }
        self.selected = AtsSource::Diesel;
        let delivered = self.generator.advance(demand_w.max(0.0), dt);
        self.diesel_wh += delivered * dt.as_hours_f64();
        self.gap_wh += (demand_w.max(0.0) - delivered) * dt.as_hours_f64();
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dg() -> DieselGenerator {
        DieselGenerator::paper_scale()
    }

    #[test]
    fn generator_cranks_before_delivering() {
        let mut g = dg();
        assert!(!g.is_running());
        // First 10 s: still cranking, nothing delivered.
        assert_eq!(g.advance(1_000.0, SimDuration::from_secs(10)), 0.0);
        assert!(!g.is_running());
        // Next 10 s: finishes the 15 s crank, delivers for the last 5 s.
        let avg = g.advance(1_000.0, SimDuration::from_secs(10));
        assert!(g.is_running());
        assert!((avg - 500.0).abs() < 1.0, "avg {avg}");
        // Fully running afterwards.
        let avg = g.advance(1_000.0, SimDuration::from_secs(60));
        assert!((avg - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn generator_caps_at_rating() {
        let mut g = dg();
        g.advance(1.0, SimDuration::from_secs(15)); // crank it
        let avg = g.advance(5_000.0, SimDuration::from_secs(60));
        assert!((avg - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn fuel_burn_scales_with_load_and_runs_dry() {
        let mut g = DieselGenerator::new(2_000.0, SimDuration::ZERO, 1.0, 1.0);
        // At rated load: 1 L/h, so the 1 L tank dies after an hour.
        let avg = g.advance(2_000.0, SimDuration::from_hours(2));
        assert!(
            (avg - 1_000.0).abs() < 1.0,
            "half the interval served: {avg}"
        );
        assert!(!g.is_running());
        assert!(g.fuel_l() <= 1e-12);
        // Dead generator delivers nothing.
        assert_eq!(g.advance(2_000.0, SimDuration::from_mins(5)), 0.0);
    }

    #[test]
    fn part_load_burns_less_fuel() {
        let mut full = DieselGenerator::new(2_000.0, SimDuration::ZERO, 1.0, 10.0);
        let mut part = DieselGenerator::new(2_000.0, SimDuration::ZERO, 1.0, 10.0);
        full.advance(2_000.0, SimDuration::from_hours(1));
        part.advance(500.0, SimDuration::from_hours(1));
        assert!(part.fuel_l() > full.fuel_l());
        // Part-load curve: 0.25 + 0.75×0.25 = 0.4375 L burned.
        assert!((10.0 - part.fuel_l() - 0.4375).abs() < 1e-9);
    }

    #[test]
    fn ats_rides_through_an_outage() {
        let mut ats = AutomaticTransferSwitch::new(dg());
        // Normal operation on utility.
        assert_eq!(ats.advance(true, 900.0, SimDuration::from_mins(1)), 900.0);
        assert_eq!(ats.selected(), AtsSource::Utility);
        // Outage: ATS transfers; the crank gap shows up as unserved energy.
        let first = ats.advance(false, 900.0, SimDuration::from_mins(1));
        assert_eq!(ats.selected(), AtsSource::Diesel);
        assert!(first < 900.0 && first > 0.0, "crank gap average {first}");
        assert!(ats.gap_wh() > 0.0);
        // Steady diesel afterwards.
        let steady = ats.advance(false, 900.0, SimDuration::from_mins(10));
        assert!((steady - 900.0).abs() < 1e-9);
        assert!(ats.diesel_wh() > 100.0);
        // Utility restored: transfer back is seamless.
        assert_eq!(ats.advance(true, 900.0, SimDuration::from_mins(1)), 900.0);
        assert_eq!(ats.selected(), AtsSource::Utility);
    }

    #[test]
    fn green_servers_ride_out_a_utility_outage() {
        // The Fig. 2 story end-to-end: during a one-hour utility outage the
        // grid side leans on the DG, while a green server sprints on its
        // battery unaffected.
        use crate::battery::{Battery, BatterySpec};
        let mut ats = AutomaticTransferSwitch::new(dg());
        let mut battery = Battery::new_full(BatterySpec::paper_batt());
        let mut green_served_wh = 0.0;
        for _minute in 0..10 {
            // Grid side: 700 W of Normal-mode servers behind the ATS.
            ats.advance(false, 700.0, SimDuration::from_mins(1));
            // Green side: full 155 W sprint from the battery.
            let out = battery.discharge(155.0, SimDuration::from_mins(1));
            green_served_wh += out.delivered_wh;
        }
        // The green sprint never saw the outage.
        assert!((green_served_wh - 155.0 * 10.0 / 60.0).abs() < 0.1);
        // The diesel carried the grid side after the crank gap.
        assert!(ats.diesel_wh() > 700.0 * 9.0 / 60.0);
    }
}
