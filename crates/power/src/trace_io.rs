//! CSV import/export for irradiance traces.
//!
//! The paper replays NREL Measurement-and-Instrumentation-Data-Center
//! traces ("including irradiation every minute"). This module reads and
//! writes a compatible minute-resolution CSV so users with access to real
//! NREL exports (or any logger output) can replay them through the same
//! engine that consumes the synthetic generator:
//!
//! ```csv
//! # comment lines and a header are both tolerated
//! minute,ghi_w_m2
//! 0,0.0
//! 1,0.0
//! …
//! ```
//!
//! Values are global horizontal irradiance in W/m²; [`read_csv`]
//! normalizes by the standard 1000 W/m² reference so the result plugs
//! into [`crate::solar::PvArray`] directly.

use crate::solar::SolarTrace;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Standard test-condition irradiance used for normalization (W/m²).
pub const STC_IRRADIANCE_W_M2: f64 = 1000.0;

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A data row could not be parsed.
    Parse { line: usize, content: String },
    /// The file contained no samples.
    Empty,
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse { line, content } => {
                write!(f, "unparseable trace row at line {line}: {content:?}")
            }
            TraceIoError::Empty => f.write_str("trace file contains no samples"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Parse a minute-resolution irradiance CSV into a normalized trace.
///
/// Accepts one or two comma-separated columns per row (`value` or
/// `index,value`), skips blank lines, `#` comments, and a non-numeric
/// header row.
pub fn read_csv(path: impl AsRef<Path>) -> Result<SolarTrace, TraceIoError> {
    parse_csv(&fs::read_to_string(path)?)
}

/// Parse CSV text (see [`read_csv`]).
pub fn parse_csv(text: &str) -> Result<SolarTrace, TraceIoError> {
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let value_field = line.rsplit(',').next().unwrap_or(line).trim();
        match value_field.parse::<f64>() {
            // NaN/inf parse as valid f64 but survive the clamp and poison
            // every downstream mean — reject them like any other bad row.
            Ok(v) if v.is_finite() => samples.push((v / STC_IRRADIANCE_W_M2).clamp(0.0, 1.0)),
            Err(_) if samples.is_empty() => continue, // header row
            _ => {
                return Err(TraceIoError::Parse {
                    line: idx + 1,
                    content: raw.to_string(),
                })
            }
        }
    }
    if samples.is_empty() {
        return Err(TraceIoError::Empty);
    }
    Ok(SolarTrace::from_samples(samples))
}

/// Write a trace back out as `minute,ghi_w_m2` CSV.
pub fn write_csv(trace: &SolarTrace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    let mut out = Vec::with_capacity(trace.len() * 16);
    writeln!(out, "minute,ghi_w_m2")?;
    for (i, s) in trace.samples().iter().enumerate() {
        writeln!(out, "{i},{:.1}", s * STC_IRRADIANCE_W_M2)?;
    }
    fs::write(path, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solar::WeatherModel;
    use gs_sim::SimRng;

    #[test]
    fn parses_two_column_csv_with_header() {
        let t = parse_csv("minute,ghi_w_m2\n0,0\n1,500\n2,1000\n3,1200\n").unwrap();
        assert_eq!(t.samples(), &[0.0, 0.5, 1.0, 1.0]); // clamped at STC
    }

    #[test]
    fn parses_single_column_with_comments() {
        let t = parse_csv("# site 39.74N\n\n250\n750\n").unwrap();
        assert_eq!(t.samples(), &[0.25, 0.75]);
    }

    #[test]
    fn rejects_garbage_mid_file() {
        let err = parse_csv("ghi\n100\nnot-a-number\n").unwrap_err();
        match err {
            TraceIoError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_non_finite_values() {
        // "nan" and "inf" parse as f64 but must not reach the trace.
        for bad in ["nan", "inf", "-inf", "NaN"] {
            let err = parse_csv(&format!("ghi\n100\n{bad}\n")).unwrap_err();
            match err {
                TraceIoError::Parse { line, content } => {
                    assert_eq!(line, 3, "{bad}");
                    assert!(content.contains(bad));
                }
                other => panic!("expected parse error for {bad}, got {other}"),
            }
        }
    }

    #[test]
    fn rejects_malformed_two_column_rows() {
        let err = parse_csv("minute,ghi\n0,100\n1,\n").unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            parse_csv("# only comments\n"),
            Err(TraceIoError::Empty)
        ));
    }

    #[test]
    fn roundtrip_through_file() {
        let mut rng = SimRng::seed_from_u64(4);
        let original = crate::solar::SolarTrace::generate(1, &WeatherModel::default(), &mut rng);
        let path = std::env::temp_dir().join(format!("gs-trace-{}.csv", std::process::id()));
        write_csv(&original, &path).unwrap();
        let restored = read_csv(&path).unwrap();
        assert_eq!(restored.len(), original.len());
        for (a, b) in original.samples().iter().zip(restored.samples()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_csv("/nonexistent/gs-trace.csv"),
            Err(TraceIoError::Io(_))
        ));
    }
}
