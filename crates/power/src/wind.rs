//! On-site wind generation.
//!
//! The paper's power architecture connects "on-site renewable power
//! supplies such as photovoltaic (PV) and wind" to the PDU (§II); the
//! evaluation exercises solar, but the framework is source-agnostic. This
//! module provides the wind half: an autocorrelated wind-speed process
//! with Weibull marginals (the standard siting distribution) driven
//! through a turbine power curve, producing the same normalized
//! minute-resolution traces [`crate::solar::SolarTrace`] uses — so a wind
//! farm plugs into the engine via `trace_override` unchanged.

use crate::solar::SolarTrace;
use gs_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A horizontal-axis turbine's power curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TurbineCurve {
    /// Wind speed below which the turbine produces nothing (m/s).
    pub cut_in_ms: f64,
    /// Speed at which rated power is reached (m/s).
    pub rated_ms: f64,
    /// Speed above which the turbine furls for safety (m/s).
    pub cut_out_ms: f64,
}

impl Default for TurbineCurve {
    fn default() -> Self {
        // Typical small/medium turbine figures.
        TurbineCurve {
            cut_in_ms: 3.0,
            rated_ms: 12.0,
            cut_out_ms: 25.0,
        }
    }
}

impl TurbineCurve {
    /// Normalized output in `[0, 1]` at a given wind speed: zero below
    /// cut-in and above cut-out, cubic between cut-in and rated (power in
    /// the wind scales with v³), flat at rated.
    pub fn output(&self, wind_ms: f64) -> f64 {
        if wind_ms < self.cut_in_ms || wind_ms >= self.cut_out_ms {
            0.0
        } else if wind_ms >= self.rated_ms {
            1.0
        } else {
            let span = self.rated_ms.powi(3) - self.cut_in_ms.powi(3);
            ((wind_ms.powi(3) - self.cut_in_ms.powi(3)) / span).clamp(0.0, 1.0)
        }
    }
}

/// The synthetic wind-speed process: an AR(1) in "Gaussian space" mapped
/// through the probability integral transform to Weibull marginals, which
/// preserves both the siting distribution and minute-scale persistence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindModel {
    /// Weibull shape `k` (≈2 for typical sites: a Rayleigh-like spread).
    pub weibull_shape: f64,
    /// Weibull scale `λ` (m/s; sets the mean speed ≈ 0.89·λ at k=2).
    pub weibull_scale_ms: f64,
    /// Minute-to-minute autocorrelation of the underlying process.
    pub autocorrelation: f64,
    /// The turbine(s) converting speed to power.
    pub turbine: TurbineCurve,
}

impl Default for WindModel {
    fn default() -> Self {
        WindModel {
            weibull_shape: 2.0,
            weibull_scale_ms: 7.5,
            autocorrelation: 0.97,
            turbine: TurbineCurve::default(),
        }
    }
}

impl WindModel {
    /// Map a standard-normal value to a Weibull wind speed via the
    /// probability integral transform.
    fn speed_from_gaussian(&self, z: f64) -> f64 {
        // Φ(z) via the complementary error function series is overkill;
        // the logistic approximation is accurate to ~1e-2 in probability,
        // far below the process noise.
        let u = 1.0 / (1.0 + (-1.702 * z).exp());
        let u = u.clamp(1e-9, 1.0 - 1e-9);
        self.weibull_scale_ms * (-(1.0 - u).ln()).powf(1.0 / self.weibull_shape)
    }

    /// Generate a `days`-long minute-resolution normalized power trace.
    pub fn generate(&self, days: u32, rng: &mut SimRng) -> SolarTrace {
        assert!((0.0..1.0).contains(&self.autocorrelation));
        let n = days as usize * 24 * 60;
        let rho = self.autocorrelation;
        let innovation = (1.0 - rho * rho).sqrt();
        let mut z = rng.standard_normal();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            z = rho * z + innovation * rng.standard_normal();
            samples.push(self.turbine.output(self.speed_from_gaussian(z)));
        }
        SolarTrace::from_samples(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_curve_regions() {
        let c = TurbineCurve::default();
        assert_eq!(c.output(0.0), 0.0);
        assert_eq!(c.output(2.9), 0.0);
        assert!(c.output(3.1) > 0.0);
        assert!(c.output(6.0) < c.output(9.0), "cubic region is monotone");
        assert_eq!(c.output(12.0), 1.0);
        assert_eq!(c.output(20.0), 1.0);
        assert_eq!(c.output(25.0), 0.0, "furled above cut-out");
    }

    #[test]
    fn cubic_region_matches_v_cubed() {
        let c = TurbineCurve::default();
        let span = 12.0_f64.powi(3) - 3.0_f64.powi(3);
        let expect = (8.0_f64.powi(3) - 27.0) / span;
        assert!((c.output(8.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn generated_trace_is_bounded_and_persistent() {
        let mut rng = SimRng::seed_from_u64(21);
        let trace = WindModel::default().generate(2, &mut rng);
        assert_eq!(trace.len(), 2 * 24 * 60);
        assert!(trace.samples().iter().all(|&s| (0.0..=1.0).contains(&s)));
        // Capacity factor lands in the realistic 0.2–0.6 band for these
        // siting parameters.
        let mean: f64 = trace.samples().iter().sum::<f64>() / trace.len() as f64;
        assert!((0.15..0.65).contains(&mean), "capacity factor {mean}");
        // Persistence: lag-1 autocorrelation of the power signal is high.
        let xs = trace.samples();
        let mu = mean;
        let var: f64 = xs.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>();
        let cov: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mu) * (w[1] - mu))
            .sum::<f64>();
        let r1 = cov / var;
        assert!(r1 > 0.8, "lag-1 autocorrelation {r1}");
    }

    #[test]
    fn reproducible_by_seed() {
        let m = WindModel::default();
        let a = m.generate(1, &mut SimRng::seed_from_u64(9));
        let b = m.generate(1, &mut SimRng::seed_from_u64(9));
        assert_eq!(a.samples(), b.samples());
        let c = m.generate(1, &mut SimRng::seed_from_u64(10));
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn calmer_site_produces_less() {
        let windy = WindModel {
            weibull_scale_ms: 10.0,
            ..WindModel::default()
        };
        let calm = WindModel {
            weibull_scale_ms: 4.0,
            ..WindModel::default()
        };
        let w = windy.generate(2, &mut SimRng::seed_from_u64(3));
        let c = calm.generate(2, &mut SimRng::seed_from_u64(3));
        let mean = |t: &SolarTrace| t.samples().iter().sum::<f64>() / t.len() as f64;
        assert!(mean(&w) > mean(&c) + 0.1);
    }
}
