//! The power-delivery hierarchy: circuit breakers and dual-bus PDUs.
//!
//! Paper §II connects the renewable supply at the **PDU level** (not the
//! utility substation), giving each PDU a dual feed: a grid bus behind a
//! circuit breaker, and a separate green bus. Sprinting servers move onto
//! the green bus so the breaker and the upstream infrastructure are not
//! stressed. Overloading the breaker remains a bounded last resort.

use gs_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A thermal-accumulation circuit breaker.
///
/// Real molded-case breakers trip on an inverse-time curve: the further the
/// load exceeds the rating, the faster the trip. We model the standard
/// `I²t`-style thermal budget: overload "heat" accumulates proportionally
/// to `(P/rating − 1)` per second and dissipates at a fixed cooling rate
/// when below rating; the breaker trips when the accumulated heat exceeds
/// a tolerance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CircuitBreaker {
    rating_w: f64,
    /// Accumulated overload heat (overload-fraction-seconds).
    heat: f64,
    /// Heat level that trips the breaker.
    trip_threshold: f64,
    /// Heat dissipated per second when under rating.
    cooling_per_sec: f64,
    tripped: bool,
}

impl CircuitBreaker {
    /// A breaker with the given continuous rating. The default tolerance
    /// sustains a 25 % overload for ~60 s before tripping.
    pub fn new(rating_w: f64) -> Self {
        assert!(rating_w > 0.0);
        CircuitBreaker {
            rating_w,
            heat: 0.0,
            trip_threshold: 15.0,
            cooling_per_sec: 0.05,
            tripped: false,
        }
    }

    /// Continuous rating (W).
    pub fn rating_w(&self) -> f64 {
        self.rating_w
    }

    /// True once the breaker has tripped (manual reset required).
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// Current thermal accumulation (diagnostics).
    pub fn heat(&self) -> f64 {
        self.heat
    }

    /// Advance the breaker by `dt` while carrying `load_w`. Returns `true`
    /// if the breaker tripped during this interval.
    pub fn advance(&mut self, load_w: f64, dt: SimDuration) -> bool {
        if self.tripped {
            return false;
        }
        let secs = dt.as_secs_f64();
        let over = load_w / self.rating_w - 1.0;
        if over > 0.0 {
            self.heat += over * secs;
        } else {
            self.heat = (self.heat - self.cooling_per_sec * secs).max(0.0);
        }
        if self.heat >= self.trip_threshold {
            self.tripped = true;
        }
        self.tripped
    }

    /// Manually reset a tripped breaker (maintenance action).
    pub fn reset(&mut self) {
        self.tripped = false;
        self.heat = 0.0;
    }
}

/// A dual-bus power distribution unit: a grid bus behind a breaker plus a
/// green bus fed by the local PV array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pdu {
    /// Breaker protecting the grid bus.
    pub breaker: CircuitBreaker,
    /// Peak capacity of the green bus wiring (W); renewable beyond this is
    /// curtailed at the PDU.
    pub green_bus_capacity_w: f64,
}

impl Pdu {
    /// A PDU with a grid breaker rated `grid_rating_w` and a green bus
    /// sized for `green_capacity_w`.
    pub fn new(grid_rating_w: f64, green_capacity_w: f64) -> Self {
        Pdu {
            breaker: CircuitBreaker::new(grid_rating_w),
            green_bus_capacity_w: green_capacity_w,
        }
    }

    /// Renewable power deliverable through the green bus right now given
    /// `produced_w` at the array.
    pub fn green_deliverable(&self, produced_w: f64) -> f64 {
        produced_w.clamp(0.0, self.green_bus_capacity_w)
    }

    /// Advance one interval with the given bus loads; returns `true` if the
    /// grid breaker tripped.
    pub fn advance(&mut self, grid_load_w: f64, dt: SimDuration) -> bool {
        self.breaker.advance(grid_load_w, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_holds_at_rating() {
        let mut cb = CircuitBreaker::new(1000.0);
        for _ in 0..3600 {
            assert!(!cb.advance(1000.0, SimDuration::from_secs(1)));
        }
        assert!(!cb.is_tripped());
        assert_eq!(cb.heat(), 0.0);
    }

    #[test]
    fn sustained_overload_trips() {
        let mut cb = CircuitBreaker::new(1000.0);
        // 25 % overload: heat rises 0.25/s, trips at 15 → ~60 s.
        let mut secs = 0;
        while !cb.advance(1250.0, SimDuration::from_secs(1)) {
            secs += 1;
            assert!(secs < 600, "breaker never tripped");
        }
        assert!(cb.is_tripped());
        assert!((50..=70).contains(&secs), "tripped after {secs}s");
    }

    #[test]
    fn larger_overload_trips_faster() {
        let trip_time = |load: f64| {
            let mut cb = CircuitBreaker::new(1000.0);
            let mut secs = 0;
            while !cb.advance(load, SimDuration::from_secs(1)) {
                secs += 1;
                if secs > 10_000 {
                    break;
                }
            }
            secs
        };
        assert!(trip_time(2000.0) < trip_time(1200.0));
    }

    #[test]
    fn brief_overload_recovers() {
        let mut cb = CircuitBreaker::new(1000.0);
        cb.advance(1500.0, SimDuration::from_secs(10)); // heat = 5
        assert!(!cb.is_tripped());
        // Cool down fully, then the same overload is tolerated again.
        cb.advance(500.0, SimDuration::from_secs(200));
        assert_eq!(cb.heat(), 0.0);
    }

    #[test]
    fn reset_clears_trip() {
        let mut cb = CircuitBreaker::new(100.0);
        cb.advance(1_000.0, SimDuration::from_secs(10));
        assert!(cb.is_tripped());
        cb.reset();
        assert!(!cb.is_tripped());
        assert!(!cb.advance(90.0, SimDuration::from_secs(1)));
    }

    #[test]
    fn pdu_green_bus_clamps() {
        let pdu = Pdu::new(1000.0, 635.25);
        assert_eq!(pdu.green_deliverable(-5.0), 0.0);
        assert_eq!(pdu.green_deliverable(300.0), 300.0);
        assert_eq!(pdu.green_deliverable(900.0), 635.25);
    }
}
