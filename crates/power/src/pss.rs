//! The Power Source Selector (PSS).
//!
//! Paper §III-A: each sprint is divided into scheduling epochs; in each
//! epoch the PSS classifies the supply situation into one of three cases
//! and allocates sources accordingly:
//!
//! * **Case 1** — renewable supply alone covers the demand; the surplus
//!   charges the battery (anything beyond the battery's acceptance is
//!   curtailed).
//! * **Case 2** — renewable is present but insufficient; the battery
//!   discharges to make up the shortage.
//! * **Case 3** — renewable is unavailable; the battery sustains the sprint
//!   alone, and once the burst completes the battery is recharged from the
//!   grid. If battery energy runs out, bounded grid overload is the last
//!   resort — otherwise the PMK must shed sprint intensity.
//!
//! The selector is a pure planning function over the epoch's predicted
//! quantities; the engine applies the plan to the stateful battery/grid.

use serde::{Deserialize, Serialize};

/// Which of the paper's supply cases an epoch falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SupplyCase {
    /// Case 1: renewable covers everything.
    GreenOnly,
    /// Case 2: renewable plus battery discharge.
    GreenPlusBattery,
    /// Case 3: battery only (renewable unavailable).
    BatteryOnly,
    /// Case 3 exhausted: bounded grid overload as the last resort.
    GridFallback,
}

impl std::fmt::Display for SupplyCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SupplyCase::GreenOnly => "green-only",
            SupplyCase::GreenPlusBattery => "green+battery",
            SupplyCase::BatteryOnly => "battery-only",
            SupplyCase::GridFallback => "grid-fallback",
        };
        f.write_str(s)
    }
}

/// The per-epoch allocation produced by the PSS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupplyPlan {
    /// Classification of the epoch.
    pub case: SupplyCase,
    /// Renewable watts serving the load.
    pub re_used_w: f64,
    /// Battery discharge watts serving the load.
    pub battery_w: f64,
    /// Grid watts serving the load beyond its Normal-mode share
    /// (emergency overload only).
    pub grid_overload_w: f64,
    /// Surplus renewable watts routed to charging the battery.
    pub re_to_charge_w: f64,
    /// Surplus renewable watts with nowhere to go (battery full/absent).
    pub curtailed_w: f64,
    /// Demand watts no source could cover — the power mismatch `M_t` the
    /// PMK must close by lowering the sprint intensity (paper Eq. 2).
    pub unmet_w: f64,
}

impl SupplyPlan {
    /// Total watts delivered to the load by this plan.
    pub fn delivered_w(&self) -> f64 {
        self.re_used_w + self.battery_w + self.grid_overload_w
    }
}

/// Threshold below which renewable supply counts as "unavailable" (W);
/// inverters cut out at very low input, and the paper's Case 3 is defined
/// by renewable being effectively absent.
pub const RE_CUTOUT_W: f64 = 1.0;

/// The PSS planning logic.
///
/// # Example
///
/// ```
/// use gs_power::pss::{PowerSourceSelector, SupplyCase};
///
/// let pss = PowerSourceSelector::new();
/// // 465 W rack sprint, 300 W of sun, battery able to cover 200 W:
/// let plan = pss.plan(465.0, 300.0, 200.0, 0.0, 0.0);
/// assert_eq!(plan.case, SupplyCase::GreenPlusBattery);
/// assert_eq!(plan.battery_w, 165.0);
/// assert_eq!(plan.unmet_w, 0.0);
/// ```

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PowerSourceSelector {
    /// Permit bounded grid overload when everything else is exhausted.
    pub allow_grid_fallback: bool,
}

impl PowerSourceSelector {
    /// A PSS that never overloads the grid (the PMK sheds load instead).
    pub fn new() -> Self {
        Self::default()
    }

    /// A PSS that uses bounded grid overload as the last resort.
    pub fn with_grid_fallback() -> Self {
        PowerSourceSelector {
            allow_grid_fallback: true,
        }
    }

    /// Allocate sources for one epoch.
    ///
    /// * `demand_w` — sprint power demand above what the normal grid share
    ///   covers (for green-bus servers: their whole draw).
    /// * `re_supply_w` — renewable power available this epoch.
    /// * `battery_power_w` — maximum battery discharge power the battery
    ///   manager is willing to sustain this epoch (0 if at the DoD floor).
    /// * `battery_accepts_w` — maximum charging power the battery can
    ///   accept this epoch (0 if full).
    /// * `grid_headroom_w` — emergency overload watts available.
    pub fn plan(
        &self,
        demand_w: f64,
        re_supply_w: f64,
        battery_power_w: f64,
        battery_accepts_w: f64,
        grid_headroom_w: f64,
    ) -> SupplyPlan {
        let demand = demand_w.max(0.0);
        let re = re_supply_w.max(0.0);
        let batt = battery_power_w.max(0.0);

        if re >= demand && re > RE_CUTOUT_W {
            // Case 1: green covers everything; surplus charges the battery.
            let surplus = re - demand;
            let to_charge = surplus.min(battery_accepts_w.max(0.0));
            return SupplyPlan {
                case: SupplyCase::GreenOnly,
                re_used_w: demand,
                battery_w: 0.0,
                grid_overload_w: 0.0,
                re_to_charge_w: to_charge,
                curtailed_w: surplus - to_charge,
                unmet_w: 0.0,
            };
        }

        if re > RE_CUTOUT_W {
            // Case 2: green + battery.
            let shortage = demand - re;
            let from_batt = shortage.min(batt);
            let mut unmet = shortage - from_batt;
            let grid = self.fallback(&mut unmet, grid_headroom_w);
            return SupplyPlan {
                case: SupplyCase::GreenPlusBattery,
                re_used_w: re,
                battery_w: from_batt,
                grid_overload_w: grid,
                re_to_charge_w: 0.0,
                curtailed_w: 0.0,
                unmet_w: unmet,
            };
        }

        // Case 3: battery only (renewable unavailable).
        let from_batt = demand.min(batt);
        let mut unmet = demand - from_batt;
        let grid = self.fallback(&mut unmet, grid_headroom_w);
        let case = if grid > 0.0 {
            SupplyCase::GridFallback
        } else {
            SupplyCase::BatteryOnly
        };
        SupplyPlan {
            case,
            re_used_w: 0.0,
            battery_w: from_batt,
            grid_overload_w: grid,
            re_to_charge_w: 0.0,
            curtailed_w: re, // below cutout; wasted
            unmet_w: unmet,
        }
    }

    fn fallback(&self, unmet: &mut f64, grid_headroom_w: f64) -> f64 {
        if !self.allow_grid_fallback || *unmet <= 0.0 {
            return 0.0;
        }
        let grid = unmet.min(grid_headroom_w.max(0.0));
        *unmet -= grid;
        grid
    }
}

/// How many recent verified observations the safe-mode estimator keeps.
pub const SAFE_HISTORY: usize = 5;

/// Per stale epoch, the safe-mode supply estimate decays by this factor —
/// the longer the sensor is dark, the less the last reading is worth.
pub const SAFE_DECAY: f64 = 0.8;

/// Safe-mode supply estimation: never plan against unverified supply.
///
/// When the RE sensor goes dark or stale, the PSS must not keep planning
/// against the last optimistic reading — a collapsed supply behind a dead
/// sensor would drain batteries into a cliff. Instead the selector plans
/// against the *worst* of the last [`SAFE_HISTORY`] verified observations,
/// decayed by [`SAFE_DECAY`] per stale epoch, riding batteries down and
/// landing on Normal rather than overcommitting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct SafeSupplyEstimator {
    /// Most recent verified supply observations (W), oldest first.
    recent: Vec<f64>,
    /// Consecutive epochs without a verified observation.
    stale_epochs: u32,
}

impl SafeSupplyEstimator {
    /// A fresh estimator with no history (plans 0 W until fed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a verified supply observation; leaves safe mode.
    pub fn observe_good(&mut self, watts: f64) {
        self.recent.push(watts.max(0.0));
        if self.recent.len() > SAFE_HISTORY {
            self.recent.remove(0);
        }
        self.stale_epochs = 0;
    }

    /// Record an epoch with no verified observation; enters/extends safe
    /// mode.
    pub fn mark_stale(&mut self) {
        self.stale_epochs = self.stale_epochs.saturating_add(1);
    }

    /// True while the most recent observation is unverified.
    pub fn in_safe_mode(&self) -> bool {
        self.stale_epochs > 0
    }

    /// Consecutive stale epochs so far.
    pub fn stale_epochs(&self) -> u32 {
        self.stale_epochs
    }

    /// The supply (W) safe mode permits planning against: the worst recent
    /// verified observation, decayed per stale epoch; 0 with no history.
    pub fn planning_supply_w(&self) -> f64 {
        let worst = self.recent.iter().copied().fold(f64::INFINITY, f64::min);
        if !worst.is_finite() {
            return 0.0;
        }
        worst * SAFE_DECAY.powi(self.stale_epochs as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn case1_green_covers_and_charges() {
        let pss = PowerSourceSelector::new();
        let p = pss.plan(400.0, 600.0, 120.0, 90.0, 0.0);
        assert_eq!(p.case, SupplyCase::GreenOnly);
        assert!((p.re_used_w - 400.0).abs() < EPS);
        assert_eq!(p.battery_w, 0.0);
        assert!((p.re_to_charge_w - 90.0).abs() < EPS);
        assert!((p.curtailed_w - 110.0).abs() < EPS);
        assert_eq!(p.unmet_w, 0.0);
        assert!((p.delivered_w() - 400.0).abs() < EPS);
    }

    #[test]
    fn case1_exact_cover_no_surplus() {
        let pss = PowerSourceSelector::new();
        let p = pss.plan(400.0, 400.0, 120.0, 90.0, 0.0);
        assert_eq!(p.case, SupplyCase::GreenOnly);
        assert_eq!(p.re_to_charge_w, 0.0);
        assert_eq!(p.curtailed_w, 0.0);
    }

    #[test]
    fn case2_battery_supplements() {
        let pss = PowerSourceSelector::new();
        let p = pss.plan(465.0, 300.0, 200.0, 50.0, 0.0);
        assert_eq!(p.case, SupplyCase::GreenPlusBattery);
        assert!((p.re_used_w - 300.0).abs() < EPS);
        assert!((p.battery_w - 165.0).abs() < EPS);
        assert_eq!(p.unmet_w, 0.0);
        assert_eq!(p.re_to_charge_w, 0.0);
    }

    #[test]
    fn case2_insufficient_battery_reports_mismatch() {
        let pss = PowerSourceSelector::new();
        let p = pss.plan(465.0, 300.0, 100.0, 0.0, 0.0);
        assert_eq!(p.case, SupplyCase::GreenPlusBattery);
        assert!((p.battery_w - 100.0).abs() < EPS);
        assert!((p.unmet_w - 65.0).abs() < EPS);
    }

    #[test]
    fn case3_battery_only() {
        let pss = PowerSourceSelector::new();
        let p = pss.plan(155.0, 0.0, 400.0, 0.0, 0.0);
        assert_eq!(p.case, SupplyCase::BatteryOnly);
        assert!((p.battery_w - 155.0).abs() < EPS);
        assert_eq!(p.re_used_w, 0.0);
        assert_eq!(p.unmet_w, 0.0);
    }

    #[test]
    fn case3_exhausted_without_fallback_is_unmet() {
        let pss = PowerSourceSelector::new();
        let p = pss.plan(155.0, 0.0, 0.0, 0.0, 500.0);
        assert_eq!(p.case, SupplyCase::BatteryOnly);
        assert!((p.unmet_w - 155.0).abs() < EPS);
        assert_eq!(p.grid_overload_w, 0.0);
    }

    #[test]
    fn grid_fallback_is_bounded() {
        let pss = PowerSourceSelector::with_grid_fallback();
        let p = pss.plan(155.0, 0.0, 50.0, 0.0, 60.0);
        assert_eq!(p.case, SupplyCase::GridFallback);
        assert!((p.battery_w - 50.0).abs() < EPS);
        assert!((p.grid_overload_w - 60.0).abs() < EPS);
        assert!((p.unmet_w - 45.0).abs() < EPS);
    }

    #[test]
    fn sub_cutout_renewable_counts_as_unavailable() {
        let pss = PowerSourceSelector::new();
        let p = pss.plan(100.0, 0.5, 200.0, 0.0, 0.0);
        assert_eq!(p.case, SupplyCase::BatteryOnly);
        assert_eq!(p.re_used_w, 0.0);
    }

    #[test]
    fn zero_demand_charges_battery_from_green() {
        let pss = PowerSourceSelector::new();
        let p = pss.plan(0.0, 300.0, 100.0, 80.0, 0.0);
        assert_eq!(p.case, SupplyCase::GreenOnly);
        assert!((p.re_to_charge_w - 80.0).abs() < EPS);
        assert!((p.curtailed_w - 220.0).abs() < EPS);
        assert_eq!(p.delivered_w(), 0.0);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let pss = PowerSourceSelector::new();
        let p = pss.plan(-10.0, -5.0, -3.0, -2.0, -1.0);
        assert_eq!(p.unmet_w, 0.0);
        assert_eq!(p.delivered_w(), 0.0);
    }

    #[test]
    fn safe_estimator_plans_against_the_worst_recent_observation() {
        let mut s = SafeSupplyEstimator::new();
        assert_eq!(s.planning_supply_w(), 0.0); // no history: assume nothing
        for w in [500.0, 300.0, 450.0] {
            s.observe_good(w);
        }
        assert!(!s.in_safe_mode());
        assert!((s.planning_supply_w() - 300.0).abs() < EPS);
    }

    #[test]
    fn safe_estimator_decays_per_stale_epoch() {
        let mut s = SafeSupplyEstimator::new();
        s.observe_good(400.0);
        s.mark_stale();
        assert!(s.in_safe_mode());
        assert!((s.planning_supply_w() - 400.0 * SAFE_DECAY).abs() < EPS);
        s.mark_stale();
        assert!((s.planning_supply_w() - 400.0 * SAFE_DECAY * SAFE_DECAY).abs() < EPS);
        // A fresh verified reading restores full trust.
        s.observe_good(350.0);
        assert!(!s.in_safe_mode());
        assert!((s.planning_supply_w() - 350.0).abs() < EPS);
    }

    #[test]
    fn safe_estimator_history_is_bounded() {
        let mut s = SafeSupplyEstimator::new();
        s.observe_good(1.0); // the low point, pushed out of the window below
        for w in 0..SAFE_HISTORY {
            s.observe_good(100.0 + w as f64);
        }
        assert!((s.planning_supply_w() - 100.0).abs() < EPS);
    }
}
