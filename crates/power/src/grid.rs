//! The capped utility feed.
//!
//! The paper's premise (§I) is that the grid infrastructure is already at
//! peak capacity: the grid can power the whole cluster at *Normal* mode
//! (100 W × N servers in the prototype) but cannot absorb sprinting bursts.
//! Overloading the circuit breaker is "the last resort" (§III-A case 3),
//! bounded by an upper limit.

use serde::{Deserialize, Serialize};

/// A grid feed with a provisioned budget and a bounded overload allowance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridSupply {
    /// Provisioned (contracted) capacity in watts.
    budget_w: f64,
    /// Maximum tolerated overload as a fraction of budget (e.g. 0.1 allows
    /// brief draws up to 110 % of budget before the breaker risk dominates).
    overload_fraction: f64,
    /// Cumulative energy drawn (Wh), for accounting.
    drawn_wh: f64,
    /// Cumulative energy above budget (Wh), a proxy for breaker stress.
    overload_wh: f64,
}

impl GridSupply {
    /// A grid feed with the given budget and a 10 % emergency overload bound.
    pub fn new(budget_w: f64) -> Self {
        GridSupply {
            budget_w,
            overload_fraction: 0.10,
            drawn_wh: 0.0,
            overload_wh: 0.0,
        }
    }

    /// Override the overload bound.
    pub fn with_overload_fraction(mut self, f: f64) -> Self {
        assert!(f >= 0.0);
        self.overload_fraction = f;
        self
    }

    /// Provisioned capacity (W).
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// Hard ceiling including the overload allowance (W).
    pub fn ceiling_w(&self) -> f64 {
        self.budget_w * (1.0 + self.overload_fraction)
    }

    /// Request `power_w` for `hours`; returns the power actually granted
    /// (clamped to the ceiling) and accounts for the energy drawn.
    pub fn draw(&mut self, power_w: f64, hours: f64) -> f64 {
        let granted = power_w.clamp(0.0, self.ceiling_w());
        self.drawn_wh += granted * hours;
        self.overload_wh += (granted - self.budget_w).max(0.0) * hours;
        granted
    }

    /// Total energy drawn so far (Wh).
    pub fn drawn_wh(&self) -> f64 {
        self.drawn_wh
    }

    /// Total energy drawn above budget so far (Wh).
    pub fn overload_wh(&self) -> f64 {
        self.overload_wh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_within_budget_pass_through() {
        let mut g = GridSupply::new(1000.0);
        assert_eq!(g.draw(800.0, 1.0), 800.0);
        assert_eq!(g.drawn_wh(), 800.0);
        assert_eq!(g.overload_wh(), 0.0);
    }

    #[test]
    fn draws_are_clamped_to_ceiling() {
        let mut g = GridSupply::new(1000.0);
        let granted = g.draw(2000.0, 0.5);
        assert!((granted - 1100.0).abs() < 1e-9);
        assert!((g.overload_wh() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn negative_requests_clamp_to_zero() {
        let mut g = GridSupply::new(1000.0);
        assert_eq!(g.draw(-5.0, 1.0), 0.0);
        assert_eq!(g.drawn_wh(), 0.0);
    }

    #[test]
    fn custom_overload_fraction() {
        let g = GridSupply::new(1000.0).with_overload_fraction(0.0);
        assert_eq!(g.ceiling_w(), 1000.0);
    }
}
