//! # gs-power — the energy substrate of a green data center
//!
//! Implements every power-side component GreenSprint depends on:
//!
//! * [`solar`] — a simulated solar generator: synthetic clear-sky +
//!   Markov-weather irradiance traces at one-minute resolution (standing in
//!   for the paper's NREL traces), PV panels with inverter efficiency, and
//!   trace replay.
//! * [`battery`] — server-level 12 V VRLA lead-acid batteries modeled with
//!   Peukert's law (exponent 1.15), a depth-of-discharge cap (40 %), charge
//!   efficiency, and cycle-life accounting.
//! * [`pss`] — the Power Source Selector: per-epoch classification into the
//!   paper's three supply cases and the resulting charge/discharge plan.
//! * [`pdu`] — the power-delivery hierarchy: utility feed, circuit breakers
//!   with thermal trip behaviour, PDUs with a dual (grid + green) bus.
//! * [`grid`] — the capped utility feed.
//! * [`meter`] — per-source energy accounting.

pub mod backup;
pub mod bank;
pub mod battery;
pub mod grid;
pub mod inverter;
pub mod meter;
pub mod pdu;
pub mod pss;
pub mod solar;
pub mod trace_io;
pub mod wind;

pub use backup::{AtsSource, AutomaticTransferSwitch, DieselGenerator};
pub use bank::BatteryBank;
pub use battery::{Battery, BatterySpec};
pub use grid::GridSupply;
pub use inverter::Inverter;
pub use meter::PowerMeter;
pub use pdu::{CircuitBreaker, Pdu};
pub use pss::{PowerSourceSelector, SafeSupplyEstimator, SupplyCase, SupplyPlan};
pub use solar::{PvArray, SolarTrace, SolarTraceError, WeatherModel};
pub use wind::{TurbineCurve, WindModel};
