//! The simulated solar generator.
//!
//! The paper replays one-week NREL irradiance traces at one-minute
//! resolution (paper §IV) through a "simulated solar power generator" and
//! scales them to the provisioned panel capacity. NREL data is not
//! redistributable here, so this module *generates* statistically similar
//! traces: a clear-sky diurnal envelope (solar-elevation day arc) modulated
//! by a three-state Markov weather process (clear / partly cloudy /
//! overcast) with minute-scale cloud flicker. The result has the properties
//! the evaluation depends on — a deterministic day/night structure plus
//! intermittent, time-varying attenuation — and is reproducible from a seed.
//!
//! Traces are stored as normalized irradiance in `[0, 1]` (fraction of the
//! panel's rated peak); [`PvArray`] converts to AC watts.

use gs_sim::{SimDuration, SimRng, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

/// Seconds per trace sample (one minute, matching the NREL trace cadence).
pub const SAMPLE_PERIOD_SECS: u64 = 60;

/// Weather regime of the Markov sky model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sky {
    /// Full clear-sky irradiance with small haze variation.
    Clear,
    /// Broken clouds: strong minute-scale flicker.
    PartlyCloudy,
    /// Thick overcast: heavily attenuated, slowly varying.
    Overcast,
}

/// Parameters of the synthetic weather process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherModel {
    /// Mean dwell time in each state, in minutes, before re-rolling.
    pub mean_dwell_mins: f64,
    /// Long-run probabilities of (clear, partly cloudy, overcast).
    pub regime_probs: [f64; 3],
    /// Hour of sunrise / sunset in local time.
    pub sunrise_hour: f64,
    pub sunset_hour: f64,
}

impl Default for WeatherModel {
    fn default() -> Self {
        WeatherModel {
            mean_dwell_mins: 45.0,
            regime_probs: [0.5, 0.3, 0.2],
            sunrise_hour: 6.0,
            sunset_hour: 18.0,
        }
    }
}

impl WeatherModel {
    /// Clear-sky normalized irradiance at a given hour of day: a day arc
    /// `sin^1.2` between sunrise and sunset, zero at night.
    pub fn clear_sky(&self, hour_of_day: f64) -> f64 {
        let h = hour_of_day.rem_euclid(24.0);
        if h <= self.sunrise_hour || h >= self.sunset_hour {
            return 0.0;
        }
        let frac = (h - self.sunrise_hour) / (self.sunset_hour - self.sunrise_hour);
        (std::f64::consts::PI * frac).sin().powf(1.2)
    }

    fn roll_regime(&self, rng: &mut SimRng) -> Sky {
        let u = rng.uniform();
        let [c, p, _] = self.regime_probs;
        if u < c {
            Sky::Clear
        } else if u < c + p {
            Sky::PartlyCloudy
        } else {
            Sky::Overcast
        }
    }
}

/// Why a set of samples cannot become a usable [`SolarTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolarTraceError {
    /// No samples at all: every lookup would silently read 0 W forever.
    Empty,
    /// A sample is NaN or infinite.
    NonFinite {
        /// Index of the first offending sample.
        index: usize,
    },
}

impl std::fmt::Display for SolarTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolarTraceError::Empty => f.write_str("solar trace contains no samples"),
            SolarTraceError::NonFinite { index } => {
                write!(f, "solar trace sample {index} is not a finite number")
            }
        }
    }
}

impl std::error::Error for SolarTraceError {}

/// A minute-resolution normalized irradiance trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolarTrace {
    /// One sample per minute, each in `[0, 1]`.
    samples: Vec<f64>,
}

impl SolarTrace {
    /// Generate a `days`-long trace with the given weather model and seed.
    pub fn generate(days: u32, model: &WeatherModel, rng: &mut SimRng) -> Self {
        let n = days as usize * 24 * 60;
        let mut samples = Vec::with_capacity(n);
        let mut regime = model.roll_regime(rng);
        let mut dwell_left = rng.exp(model.mean_dwell_mins).max(1.0);
        // Slowly varying overcast attenuation random-walks in [0.05, 0.3].
        let mut overcast_level = rng.uniform_range(0.08, 0.25);
        for minute in 0..n {
            let hour = minute as f64 / 60.0 % 24.0;
            let clear = model.clear_sky(hour);
            dwell_left -= 1.0;
            if dwell_left <= 0.0 {
                regime = model.roll_regime(rng);
                dwell_left = rng.exp(model.mean_dwell_mins).max(1.0);
                if regime == Sky::Overcast {
                    overcast_level = rng.uniform_range(0.05, 0.3);
                }
            }
            let attenuation = match regime {
                Sky::Clear => rng.uniform_range(0.92, 1.0),
                Sky::PartlyCloudy => {
                    // Bimodal flicker: mostly bright with cloud shadows.
                    if rng.chance(0.35) {
                        rng.uniform_range(0.15, 0.45)
                    } else {
                        rng.uniform_range(0.7, 0.95)
                    }
                }
                Sky::Overcast => {
                    overcast_level = (overcast_level + rng.normal(0.0, 0.01)).clamp(0.03, 0.35);
                    overcast_level
                }
            };
            samples.push((clear * attenuation).clamp(0.0, 1.0));
        }
        SolarTrace { samples }
    }

    /// Build a trace directly from normalized samples (e.g. loaded from a
    /// CSV of real irradiance data). Values are clamped to `[0, 1]`;
    /// non-finite samples (which survive `clamp` and would poison every
    /// window mean) are coerced to 0.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        SolarTrace {
            samples: samples
                .into_iter()
                .map(|s| {
                    if s.is_finite() {
                        s.clamp(0.0, 1.0)
                    } else {
                        0.0
                    }
                })
                .collect(),
        }
    }

    /// As [`Self::from_samples`] but strict: empty input and non-finite
    /// samples are errors rather than silently coerced. Use this on
    /// untrusted data (scenario files, network input).
    pub fn try_from_samples(samples: Vec<f64>) -> Result<Self, SolarTraceError> {
        if samples.is_empty() {
            return Err(SolarTraceError::Empty);
        }
        if let Some(index) = samples.iter().position(|s| !s.is_finite()) {
            return Err(SolarTraceError::NonFinite { index });
        }
        Ok(Self::from_samples(samples))
    }

    /// Check an already-constructed trace (e.g. deserialized straight from
    /// JSON, bypassing the constructors) for the same invariants
    /// [`Self::try_from_samples`] enforces.
    pub fn validate(&self) -> Result<(), SolarTraceError> {
        if self.samples.is_empty() {
            return Err(SolarTraceError::Empty);
        }
        if let Some(index) = self.samples.iter().position(|s| !s.is_finite()) {
            return Err(SolarTraceError::NonFinite { index });
        }
        Ok(())
    }

    /// A perfectly clear synthetic day (no weather), useful for maximum-
    /// availability experiments and tests.
    pub fn clear_days(days: u32, model: &WeatherModel) -> Self {
        let n = days as usize * 24 * 60;
        let samples = (0..n)
            .map(|minute| model.clear_sky(minute as f64 / 60.0 % 24.0))
            .collect();
        SolarTrace { samples }
    }

    /// A trace that is identically zero (nighttime / total outage),
    /// modelling the paper's *minimum availability* case.
    pub fn zero(days: u32) -> Self {
        SolarTrace {
            samples: vec![0.0; days as usize * 24 * 60],
        }
    }

    /// A constant-irradiance trace (used to pin *medium availability* to an
    /// exact fraction of peak in controlled experiments).
    pub fn constant(days: u32, level: f64) -> Self {
        SolarTrace {
            samples: vec![level.clamp(0.0, 1.0); days as usize * 24 * 60],
        }
    }

    /// Number of minute samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Trace duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.samples.len() as u64 * SAMPLE_PERIOD_SECS)
    }

    /// Normalized irradiance at simulated time `t`. The trace repeats
    /// cyclically if sampled past its end (a week of weather tiles cleanly).
    pub fn at(&self, t: SimTime) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = (t.as_secs() / SAMPLE_PERIOD_SECS) as usize % self.samples.len();
        self.samples[idx]
    }

    /// Raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean normalized irradiance over a window (cyclic sampling).
    pub fn window_mean(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let step = SimDuration::from_secs(SAMPLE_PERIOD_SECS);
        let mut t = from;
        let mut sum = 0.0;
        let mut n = 0u64;
        while t < to {
            sum += self.at(t);
            n += 1;
            t += step;
        }
        sum / n as f64
    }

    /// Find the start of the `window`-long window with the highest mean
    /// irradiance within the first `search_span`; used to locate the
    /// paper's *maximum availability* periods in a generated trace.
    pub fn best_window(&self, window: SimDuration, search_span: SimDuration) -> SimTime {
        self.extreme_window(window, search_span, true)
    }

    /// As [`Self::best_window`] but the lowest-mean window (*minimum
    /// availability*).
    pub fn worst_window(&self, window: SimDuration, search_span: SimDuration) -> SimTime {
        self.extreme_window(window, search_span, false)
    }

    fn extreme_window(&self, window: SimDuration, span: SimDuration, max: bool) -> SimTime {
        let step = SimDuration::from_secs(SAMPLE_PERIOD_SECS);
        let mut best_t = SimTime::ZERO;
        let mut best_v = if max {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        let mut t = SimTime::ZERO;
        while t + window <= SimTime::ZERO + span {
            let v = self.window_mean(t, t + window);
            if (max && v > best_v) || (!max && v < best_v) {
                best_v = v;
                best_t = t;
            }
            t += step;
        }
        best_t
    }

    /// Export as a [`TimeSeries`] (for figure printing).
    pub fn to_series(&self, name: &str) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for (i, &v) in self.samples.iter().enumerate() {
            s.push(SimTime::from_secs(i as u64 * SAMPLE_PERIOD_SECS), v);
        }
        s
    }
}

/// A photovoltaic array: `panels` identical DC panels feeding one inverter.
///
/// Paper calibration (§IV): each provisioned server gets a 275 W-DC panel
/// (GrapeSolar-class) whose AC output is `275 × 0.77 = 211.75 W` at peak.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PvArray {
    /// Number of panels.
    pub panels: u32,
    /// Rated DC watts per panel.
    pub panel_dc_watts: f64,
    /// DC→AC conversion efficiency.
    pub inverter_efficiency: f64,
}

/// The paper's per-panel rating.
pub const PAPER_PANEL_DC_WATTS: f64 = 275.0;
/// The paper's inverter efficiency (α in `PeakRE × α`).
pub const PAPER_INVERTER_EFFICIENCY: f64 = 0.77;

impl PvArray {
    /// An array of `panels` paper-spec panels (275 W DC, 0.77 efficiency).
    pub fn paper_spec(panels: u32) -> Self {
        PvArray {
            panels,
            panel_dc_watts: PAPER_PANEL_DC_WATTS,
            inverter_efficiency: PAPER_INVERTER_EFFICIENCY,
        }
    }

    /// Peak AC output (all panels at normalized irradiance 1.0).
    pub fn peak_ac_watts(&self) -> f64 {
        self.panels as f64 * self.panel_dc_watts * self.inverter_efficiency
    }

    /// AC output at a given normalized irradiance.
    pub fn ac_output(&self, normalized_irradiance: f64) -> f64 {
        self.peak_ac_watts() * normalized_irradiance.clamp(0.0, 1.0)
    }

    /// AC output at simulated time `t` under `trace`.
    pub fn output_at(&self, trace: &SolarTrace, t: SimTime) -> f64 {
        self.ac_output(trace.at(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_from_samples_rejects_empty_and_non_finite() {
        assert_eq!(
            SolarTrace::try_from_samples(vec![]).unwrap_err(),
            SolarTraceError::Empty
        );
        assert_eq!(
            SolarTrace::try_from_samples(vec![0.5, f64::NAN, 0.2]).unwrap_err(),
            SolarTraceError::NonFinite { index: 1 }
        );
        assert_eq!(
            SolarTrace::try_from_samples(vec![f64::INFINITY]).unwrap_err(),
            SolarTraceError::NonFinite { index: 0 }
        );
        let ok = SolarTrace::try_from_samples(vec![0.5, 2.0, -1.0]).unwrap();
        assert_eq!(ok.samples(), &[0.5, 1.0, 0.0]); // still clamped
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn from_samples_coerces_non_finite_to_zero() {
        let t = SolarTrace::from_samples(vec![0.5, f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(t.samples(), &[0.5, 0.0, 0.0]);
        // The lenient constructor output always validates.
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_catches_deserialized_garbage() {
        // Scenario JSON deserializes the private field directly, bypassing
        // the constructors — validate() is the backstop.
        let t: SolarTrace = serde_json::from_str(r#"{"samples": []}"#).unwrap();
        assert_eq!(t.validate(), Err(SolarTraceError::Empty));
    }

    #[test]
    fn paper_panel_peak_matches() {
        let one = PvArray::paper_spec(1);
        assert!((one.peak_ac_watts() - 211.75).abs() < 1e-9);
        let three = PvArray::paper_spec(3);
        assert!((three.peak_ac_watts() - 635.25).abs() < 1e-9);
        let two = PvArray::paper_spec(2);
        assert!((two.peak_ac_watts() - 423.5).abs() < 1e-9);
    }

    #[test]
    fn clear_sky_is_zero_at_night_and_peaks_at_noon() {
        let m = WeatherModel::default();
        assert_eq!(m.clear_sky(0.0), 0.0);
        assert_eq!(m.clear_sky(5.9), 0.0);
        assert_eq!(m.clear_sky(19.0), 0.0);
        let noon = m.clear_sky(12.0);
        assert!((noon - 1.0).abs() < 1e-9, "noon={noon}");
        assert!(m.clear_sky(9.0) < noon);
        assert!(m.clear_sky(9.0) > 0.0);
    }

    #[test]
    fn generated_trace_has_expected_shape() {
        let mut rng = SimRng::seed_from_u64(11);
        let trace = SolarTrace::generate(7, &WeatherModel::default(), &mut rng);
        assert_eq!(trace.len(), 7 * 24 * 60);
        assert!(trace.samples().iter().all(|&s| (0.0..=1.0).contains(&s)));
        // Nighttime is dark.
        assert_eq!(trace.at(SimTime::from_hours(2)), 0.0);
        // There is meaningful daytime generation somewhere in the week.
        let peak = trace.samples().iter().cloned().fold(0.0, f64::max);
        assert!(peak > 0.5, "peak={peak}");
        // Weather attenuates below clear sky on average.
        let clear = SolarTrace::clear_days(7, &WeatherModel::default());
        let sum: f64 = trace.samples().iter().sum();
        let clear_sum: f64 = clear.samples().iter().sum();
        assert!(sum < clear_sum);
    }

    #[test]
    fn trace_is_reproducible_by_seed() {
        let m = WeatherModel::default();
        let a = SolarTrace::generate(2, &m, &mut SimRng::seed_from_u64(5));
        let b = SolarTrace::generate(2, &m, &mut SimRng::seed_from_u64(5));
        assert_eq!(a.samples(), b.samples());
        let c = SolarTrace::generate(2, &m, &mut SimRng::seed_from_u64(6));
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn trace_wraps_cyclically() {
        let trace = SolarTrace::clear_days(1, &WeatherModel::default());
        let t0 = SimTime::from_hours(12);
        let t1 = SimTime::from_hours(36);
        assert_eq!(trace.at(t0), trace.at(t1));
    }

    #[test]
    fn constant_and_zero_traces() {
        let z = SolarTrace::zero(1);
        assert!(z.samples().iter().all(|&s| s == 0.0));
        let c = SolarTrace::constant(1, 0.5);
        assert!(c.samples().iter().all(|&s| s == 0.5));
        // Clamping.
        let c = SolarTrace::constant(1, 1.5);
        assert!(c.samples().iter().all(|&s| s == 1.0));
    }

    #[test]
    fn best_and_worst_windows() {
        let trace = SolarTrace::clear_days(1, &WeatherModel::default());
        let w = SimDuration::from_mins(60);
        let span = SimDuration::from_hours(24);
        let best = trace.best_window(w, span);
        // Best hour straddles solar noon.
        let h = best.as_hours_f64();
        assert!((11.0..=12.1).contains(&h), "best hour starts at {h}");
        let worst = trace.worst_window(w, span);
        assert_eq!(trace.window_mean(worst, worst + w), 0.0);
    }

    #[test]
    fn pv_output_scales_with_irradiance() {
        let arr = PvArray::paper_spec(3);
        assert_eq!(arr.ac_output(0.0), 0.0);
        assert!((arr.ac_output(0.5) - 317.625).abs() < 1e-9);
        assert!((arr.ac_output(2.0) - arr.peak_ac_watts()).abs() < 1e-9);
    }

    #[test]
    fn from_samples_clamps() {
        let t = SolarTrace::from_samples(vec![-0.5, 0.5, 1.5]);
        assert_eq!(t.samples(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn window_mean_cyclic() {
        let trace = SolarTrace::constant(1, 0.4);
        let m = trace.window_mean(SimTime::from_hours(23), SimTime::from_hours(25));
        assert!((m - 0.4).abs() < 1e-9);
        assert_eq!(
            trace.window_mean(SimTime::from_hours(5), SimTime::from_hours(5)),
            0.0
        );
    }
}
