//! A bank of per-server batteries managed as one rack-level resource.
//!
//! The paper adopts Google-style *server-level* batteries (§II), but the
//! PSS reasons about the rack's aggregate battery supply. The bank splits
//! discharge and charge evenly across units that can still accept it,
//! re-normalizing as individual units hit their DoD floor or fill up.

use crate::battery::{Battery, BatterySpec, DischargeOutcome};
use gs_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A group of identical server-level batteries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatteryBank {
    units: Vec<Battery>,
}

impl BatteryBank {
    /// `n` fully charged units of the given spec.
    pub fn new(n: usize, spec: BatterySpec) -> Self {
        BatteryBank {
            units: (0..n).map(|_| Battery::new_full(spec.clone())).collect(),
        }
    }

    /// An empty bank (the paper's REOnly configuration).
    pub fn none() -> Self {
        BatteryBank { units: Vec::new() }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True if the bank has no batteries.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The individual units.
    pub fn units(&self) -> &[Battery] {
        &self.units
    }

    /// Mean state of charge across units (1.0 for an empty bank, which can
    /// never discharge anyway).
    pub fn soc_fraction(&self) -> f64 {
        if self.units.is_empty() {
            return 1.0;
        }
        self.units.iter().map(Battery::soc_fraction).sum::<f64>() / self.units.len() as f64
    }

    /// True when no unit can discharge further.
    pub fn at_dod_floor(&self) -> bool {
        self.units.iter().all(Battery::at_dod_floor)
    }

    /// True when every unit is full.
    pub fn is_full(&self) -> bool {
        self.units.iter().all(Battery::is_full)
    }

    /// Aggregate power (W) the bank can sustain for `duration`, assuming an
    /// even split across units that still have usable charge.
    pub fn sustainable_power(&self, duration: SimDuration) -> f64 {
        self.units
            .iter()
            .map(|b| b.sustainable_power(duration))
            .sum()
    }

    /// Aggregate instantaneous discharge limit (W).
    pub fn max_discharge_power(&self) -> f64 {
        self.units
            .iter()
            .filter(|b| !b.at_dod_floor())
            .map(|b| b.spec().max_discharge_power_w())
            .sum()
    }

    /// Aggregate charge acceptance (W).
    pub fn max_charge_power(&self) -> f64 {
        self.units
            .iter()
            .filter(|b| !b.is_full())
            .map(|b| b.spec().max_charge_power_w())
            .sum()
    }

    /// Discharge `power_w` split across the bank for `dt`. Returns the
    /// total energy delivered and the shortest sustained time across the
    /// engaged units (the moment aggregate output first fell short).
    pub fn discharge(&mut self, power_w: f64, dt: SimDuration) -> DischargeOutcome {
        let live: Vec<usize> = (0..self.units.len())
            .filter(|&i| !self.units[i].at_dod_floor())
            .collect();
        if power_w <= 0.0 || live.is_empty() {
            return DischargeOutcome {
                delivered_wh: 0.0,
                sustained: SimDuration::ZERO,
            };
        }
        let share = power_w / live.len() as f64;
        let mut delivered = 0.0;
        let mut sustained = dt;
        for i in live {
            let out = self.units[i].discharge(share, dt);
            delivered += out.delivered_wh;
            sustained = sustained.min(out.sustained);
        }
        DischargeOutcome {
            delivered_wh: delivered,
            sustained,
        }
    }

    /// Charge with up to `power_w` available for `dt`, split across the
    /// units that can accept it; returns the power actually drawn.
    pub fn charge(&mut self, power_w: f64, dt: SimDuration) -> f64 {
        let open: Vec<usize> = (0..self.units.len())
            .filter(|&i| !self.units[i].is_full())
            .collect();
        if power_w <= 0.0 || open.is_empty() {
            return 0.0;
        }
        let share = power_w / open.len() as f64;
        open.into_iter()
            .map(|i| self.units[i].charge(share, dt))
            .sum()
    }

    /// Mean equivalent cycles consumed across units (0 for an empty bank).
    pub fn equivalent_cycles(&self) -> f64 {
        if self.units.is_empty() {
            return 0.0;
        }
        self.units
            .iter()
            .map(Battery::equivalent_cycles)
            .sum::<f64>()
            / self.units.len() as f64
    }

    /// Restore every unit to full charge (test/scenario setup).
    pub fn reset_full(&mut self) {
        for b in &mut self.units {
            b.reset_full();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BatteryBank {
        BatteryBank::new(3, BatterySpec::paper_batt())
    }

    #[test]
    fn aggregates_scale_with_units() {
        let b = bank();
        let single = Battery::new_full(BatterySpec::paper_batt());
        let d = SimDuration::from_mins(10);
        assert!((b.sustainable_power(d) - 3.0 * single.sustainable_power(d)).abs() < 1e-9);
        assert_eq!(b.len(), 3);
        assert!((b.soc_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bank_is_inert() {
        let mut b = BatteryBank::none();
        assert!(b.is_empty());
        assert_eq!(b.sustainable_power(SimDuration::from_mins(10)), 0.0);
        assert_eq!(
            b.discharge(100.0, SimDuration::from_mins(1)).delivered_wh,
            0.0
        );
        assert_eq!(b.charge(100.0, SimDuration::from_mins(1)), 0.0);
        assert!(b.at_dod_floor());
        assert!(b.is_full());
        assert_eq!(b.equivalent_cycles(), 0.0);
    }

    #[test]
    fn discharge_splits_evenly() {
        let mut b = bank();
        let out = b.discharge(300.0, SimDuration::from_mins(3));
        assert!((out.delivered_wh - 300.0 * 3.0 / 60.0).abs() < 1e-9);
        let socs: Vec<f64> = b.units().iter().map(Battery::soc_fraction).collect();
        assert!((socs[0] - socs[1]).abs() < 1e-12);
        assert!((socs[1] - socs[2]).abs() < 1e-12);
    }

    #[test]
    fn full_cluster_sprint_on_batteries_lasts_past_ten_minutes() {
        // 3 green servers at 155 W each on 3 × 10 Ah server batteries.
        let mut b = bank();
        let out = b.discharge(465.0, SimDuration::from_mins(60));
        let mins = out.sustained.as_secs_f64() / 60.0;
        assert!((10.0..14.0).contains(&mins), "sustained {mins} min");
        assert!(b.at_dod_floor());
    }

    #[test]
    fn charge_refills_and_reports_draw() {
        let mut b = bank();
        b.discharge(465.0, SimDuration::from_mins(5));
        let before = b.soc_fraction();
        let drawn = b.charge(90.0, SimDuration::from_mins(10));
        assert!(drawn > 0.0 && drawn <= 90.0);
        assert!(b.soc_fraction() > before);
        // Charging a full bank draws nothing.
        b.reset_full();
        assert_eq!(b.charge(90.0, SimDuration::from_mins(10)), 0.0);
    }

    #[test]
    fn cycle_accounting_averages() {
        let mut b = bank();
        b.discharge(465.0, SimDuration::from_mins(20));
        assert!(b.equivalent_cycles() > 0.5);
    }
}
