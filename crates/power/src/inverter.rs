//! Inverter modeling beyond the paper's flat α = 0.77.
//!
//! The paper folds all DC→AC losses into one constant. Real inverters have
//! a *curve*: zero output below a cut-in threshold (the electronics' own
//! tare draw), efficiency climbing steeply and flattening near rated load,
//! and hard clipping at the AC nameplate. The standard summary is the CEC
//! weighted efficiency. This module provides that curve so sizing studies
//! (e.g. `examples/microgrid_sizing.rs`) can ask how much the flat-α
//! assumption distorts low-light behaviour.
//!
//! Efficiency model (Driesse-style, two-parameter):
//!
//! `P_ac = (P_dc − P_tare) · η_peak · P_dc / (P_dc + P_knee)`  — clipped to
//! the AC rating and floored at zero.

use serde::{Deserialize, Serialize};

/// A DC→AC inverter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Inverter {
    /// AC nameplate (W): output clips here.
    pub rated_ac_w: f64,
    /// Electronics tare draw (W): DC input below this produces nothing.
    pub tare_w: f64,
    /// Peak conversion efficiency approached at high load.
    pub peak_efficiency: f64,
    /// Knee power (W): how fast the curve approaches the peak; efficiency
    /// is half the peak when `P_dc == P_knee` (after tare).
    pub knee_w: f64,
}

impl Inverter {
    /// An inverter sized for `n_panels` paper-spec panels whose *CEC
    /// weighted efficiency* reproduces the paper's flat α = 0.77, so the
    /// curve refines the shape without moving the calibrated energy total.
    pub fn paper_equivalent(n_panels: u32) -> Self {
        let dc_rated = n_panels as f64 * crate::solar::PAPER_PANEL_DC_WATTS;
        Inverter {
            rated_ac_w: dc_rated * 0.85,
            tare_w: 0.01 * dc_rated,
            peak_efficiency: 0.822,
            knee_w: 0.02 * dc_rated,
        }
    }

    /// AC output for a DC input (W).
    pub fn ac_output(&self, dc_w: f64) -> f64 {
        let net = dc_w - self.tare_w;
        if net <= 0.0 {
            return 0.0;
        }
        let eff = self.peak_efficiency * net / (net + self.knee_w);
        (net * eff).min(self.rated_ac_w)
    }

    /// Point efficiency at a DC input (0 below cut-in).
    pub fn efficiency_at(&self, dc_w: f64) -> f64 {
        if dc_w <= 0.0 {
            0.0
        } else {
            self.ac_output(dc_w) / dc_w
        }
    }

    /// CEC weighted efficiency: the standard weighting of point
    /// efficiencies at 10/20/30/50/75/100 % of rated DC input.
    pub fn cec_weighted_efficiency(&self, dc_rated_w: f64) -> f64 {
        const POINTS: [(f64, f64); 6] = [
            (0.10, 0.04),
            (0.20, 0.05),
            (0.30, 0.12),
            (0.50, 0.21),
            (0.75, 0.53),
            (1.00, 0.05),
        ];
        POINTS
            .iter()
            .map(|&(frac, weight)| weight * self.efficiency_at(frac * dc_rated_w))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solar::PAPER_PANEL_DC_WATTS;

    fn inv() -> Inverter {
        Inverter::paper_equivalent(3)
    }

    #[test]
    fn dead_below_cut_in() {
        let i = inv();
        assert_eq!(i.ac_output(0.0), 0.0);
        assert_eq!(i.ac_output(i.tare_w), 0.0);
        assert_eq!(i.ac_output(i.tare_w * 0.5), 0.0);
        assert_eq!(i.efficiency_at(0.0), 0.0);
    }

    #[test]
    fn efficiency_is_monotone_and_bounded() {
        let i = inv();
        let dc_rated = 3.0 * PAPER_PANEL_DC_WATTS;
        let mut prev = 0.0;
        for frac in [0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0] {
            let eff = i.efficiency_at(frac * dc_rated);
            assert!(eff >= prev - 1e-9, "dip at {frac}");
            assert!(eff < i.peak_efficiency);
            prev = eff;
        }
    }

    #[test]
    fn clips_at_ac_rating() {
        let i = inv();
        assert!(i.ac_output(1e6) <= i.rated_ac_w + 1e-9);
        assert_eq!(i.ac_output(1e6), i.rated_ac_w);
    }

    #[test]
    fn paper_equivalent_matches_flat_alpha_on_cec_weighting() {
        // The refined curve should integrate to roughly the paper's 0.77
        // under the CEC weighting — same energy, better shape.
        let i = inv();
        let cec = i.cec_weighted_efficiency(3.0 * PAPER_PANEL_DC_WATTS);
        assert!(
            (cec - crate::solar::PAPER_INVERTER_EFFICIENCY).abs() < 0.02,
            "CEC weighted {cec} vs paper 0.77"
        );
    }

    #[test]
    fn low_light_is_where_the_flat_alpha_lies() {
        // At 5 % of rated DC the real curve is far below 0.77 — the
        // distortion the flat assumption hides.
        let i = inv();
        let eff = i.efficiency_at(0.05 * 3.0 * PAPER_PANEL_DC_WATTS);
        assert!(eff < 0.65, "low-light efficiency {eff}");
    }
}
