//! Server-level VRLA (valve-regulated lead-acid) battery model.
//!
//! Follows the paper's battery assumptions (§II):
//!
//! * 12 V server-level VRLA units (Google-style distributed batteries);
//! * capacity is rated at the 20-hour discharge rate and derates under
//!   higher currents per **Peukert's law** with exponent 1.15 (the paper
//!   cites the canonical example: a 24 Ah battery delivers only ~12 Ah at a
//!   12-minute rate);
//! * depth of discharge (DoD) is capped at 40 %, which corresponds to a
//!   cycle life of 1300 recharge cycles;
//! * the remaining discharging time is recomputed after every scheduling
//!   epoch to capture Peukert's effect (paper §III-A).
//!
//! Internally the state of charge is tracked in *rated* amp-hours: a
//! discharge at current `I` drains rated capacity at the accelerated rate
//! `I · (I / I_rated)^(k-1)` where `I_rated = C / H` is the nominal
//! 20-hour-rate current. This is the standard reformulation of Peukert's
//! `t = H · (C / (I·H))^k` and reproduces the paper's derating example.

use gs_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Static parameters of a battery unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatterySpec {
    /// Nominal bus voltage (V).
    pub voltage_v: f64,
    /// Rated capacity (Ah) at the `rated_hours` discharge rate.
    pub capacity_ah: f64,
    /// Hours of the rating regime (20 h for VRLA).
    pub rated_hours: f64,
    /// Peukert exponent `k` (1.15 for lead-acid, per the paper).
    pub peukert_exponent: f64,
    /// Maximum allowed depth of discharge, as a fraction of rated capacity.
    pub max_dod: f64,
    /// Coulombic efficiency of charging (fraction of input energy stored).
    pub charge_efficiency: f64,
    /// Maximum charge current as a multiple of C (the one-hour rate).
    pub max_charge_c_rate: f64,
    /// Maximum discharge current as a multiple of C.
    pub max_discharge_c_rate: f64,
    /// Recharge cycles until end of life when cycled at `max_dod`.
    pub cycle_life_at_max_dod: f64,
}

/// The paper's Peukert exponent for lead-acid batteries.
pub const PAPER_PEUKERT_EXPONENT: f64 = 1.15;
/// The paper's depth-of-discharge cap.
pub const PAPER_MAX_DOD: f64 = 0.40;
/// The paper's cycle life at 40 % DoD.
pub const PAPER_CYCLE_LIFE: f64 = 1300.0;

impl BatterySpec {
    /// A server-level VRLA unit with the given rated capacity, using the
    /// paper's constants for everything else.
    pub fn paper_vrla(capacity_ah: f64) -> Self {
        BatterySpec {
            voltage_v: 12.0,
            capacity_ah,
            rated_hours: 20.0,
            peukert_exponent: PAPER_PEUKERT_EXPONENT,
            max_dod: PAPER_MAX_DOD,
            charge_efficiency: 0.85,
            max_charge_c_rate: 0.25,
            // UPS-class VRLA units are designed for minutes-scale high-rate
            // discharge; 6C keeps the 3.2 Ah unit able to carry a 155 W
            // full-server sprint (13 A ≈ 4C) with margin.
            max_discharge_c_rate: 6.0,
            cycle_life_at_max_dod: PAPER_CYCLE_LIFE,
        }
    }

    /// The "Batt" configuration of Table I: 10 Ah per server.
    pub fn paper_batt() -> Self {
        Self::paper_vrla(10.0)
    }

    /// The "SBatt" (small battery) configuration of Table I: 3.2 Ah.
    pub fn paper_sbatt() -> Self {
        Self::paper_vrla(3.2)
    }

    /// Nominal current of the rating regime, `I_rated = C / H` (A).
    pub fn rated_current_a(&self) -> f64 {
        self.capacity_ah / self.rated_hours
    }

    /// Rated energy content (Wh) at the rating regime.
    pub fn rated_energy_wh(&self) -> f64 {
        self.capacity_ah * self.voltage_v
    }

    /// Usable energy above the DoD floor, ignoring Peukert derating (Wh).
    pub fn usable_energy_wh(&self) -> f64 {
        self.rated_energy_wh() * self.max_dod
    }

    /// Maximum discharge power (W) permitted by the C-rate limit.
    pub fn max_discharge_power_w(&self) -> f64 {
        self.max_discharge_c_rate * self.capacity_ah * self.voltage_v
    }

    /// Maximum charge power (W) permitted by the C-rate limit.
    pub fn max_charge_power_w(&self) -> f64 {
        self.max_charge_c_rate * self.capacity_ah * self.voltage_v
    }

    /// Peukert drain rate: rated Ah consumed per hour when discharging at
    /// `current_a`. Equals `I` at the rated current and grows superlinearly
    /// above it.
    pub fn peukert_drain_ah_per_hour(&self, current_a: f64) -> f64 {
        if current_a <= 0.0 {
            return 0.0;
        }
        let i_rated = self.rated_current_a();
        current_a * (current_a / i_rated).powf(self.peukert_exponent - 1.0)
    }

    /// Effective deliverable capacity (Ah of actual charge at the terminal)
    /// when discharged at a constant `current_a`, from full to empty.
    pub fn effective_capacity_ah(&self, current_a: f64) -> f64 {
        if current_a <= 0.0 {
            return self.capacity_ah;
        }
        let drain = self.peukert_drain_ah_per_hour(current_a);
        // time to empty = capacity / drain; delivered = I * time.
        current_a * self.capacity_ah / drain
    }
}

/// What actually happened during a requested discharge interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DischargeOutcome {
    /// Energy actually delivered (Wh).
    pub delivered_wh: f64,
    /// How long the requested power was sustained before hitting the DoD
    /// floor (equals the request duration if fully sustained).
    pub sustained: SimDuration,
}

/// A battery unit with live state of charge and wear accounting.
///
/// # Example
///
/// ```
/// use gs_power::battery::{Battery, BatterySpec};
/// use gs_sim::SimDuration;
///
/// // The paper's 10 Ah server-level VRLA unit.
/// let mut b = Battery::new_full(BatterySpec::paper_batt());
/// // A full 155 W sprint drains it to the 40 % DoD floor in ~11 minutes
/// // (Peukert derating included).
/// let lasts = b.max_discharge_duration(155.0);
/// assert!(lasts > SimDuration::from_mins(10));
/// let out = b.discharge(155.0, SimDuration::from_mins(5));
/// assert!((out.delivered_wh - 155.0 * 5.0 / 60.0).abs() < 1e-9);
/// ```

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Battery {
    spec: BatterySpec,
    /// Remaining charge in *rated* Ah (full = `spec.capacity_ah`).
    soc_rated_ah: f64,
    /// Lifetime rated-Ah discharged (for cycle accounting).
    total_discharged_rated_ah: f64,
}

impl Battery {
    /// A fully charged battery.
    pub fn new_full(spec: BatterySpec) -> Self {
        let soc = spec.capacity_ah;
        Battery {
            spec,
            soc_rated_ah: soc,
            total_discharged_rated_ah: 0.0,
        }
    }

    /// The static spec.
    pub fn spec(&self) -> &BatterySpec {
        &self.spec
    }

    /// State of charge as a fraction of rated capacity in `[0, 1]`.
    pub fn soc_fraction(&self) -> f64 {
        self.soc_rated_ah / self.spec.capacity_ah
    }

    /// Depth of discharge, `1 - SoC`.
    pub fn dod_fraction(&self) -> f64 {
        1.0 - self.soc_fraction()
    }

    /// Rated Ah still available above the DoD floor.
    pub fn usable_rated_ah(&self) -> f64 {
        (self.soc_rated_ah - (1.0 - self.spec.max_dod) * self.spec.capacity_ah).max(0.0)
    }

    /// True once the DoD cap is reached (no further discharge permitted).
    pub fn at_dod_floor(&self) -> bool {
        self.usable_rated_ah() <= 1e-9
    }

    /// True when fully charged.
    pub fn is_full(&self) -> bool {
        self.soc_rated_ah >= self.spec.capacity_ah - 1e-9
    }

    /// The discharge current (A) needed to supply `power_w` at the bus.
    pub fn current_for_power(&self, power_w: f64) -> f64 {
        power_w / self.spec.voltage_v
    }

    /// How long `power_w` can be sustained from the current state before
    /// hitting the DoD floor, honouring the C-rate limit (returns zero if
    /// the power exceeds it or the floor is already reached).
    pub fn max_discharge_duration(&self, power_w: f64) -> SimDuration {
        if power_w <= 0.0 {
            return SimDuration::from_hours(u64::MAX / 3_600_000_000);
        }
        if power_w > self.spec.max_discharge_power_w() {
            return SimDuration::ZERO;
        }
        let drain = self
            .spec
            .peukert_drain_ah_per_hour(self.current_for_power(power_w));
        let hours = self.usable_rated_ah() / drain;
        SimDuration::from_secs_f64(hours * 3_600.0)
    }

    /// The largest constant power (W) sustainable for `duration` from the
    /// current state, capped by the C-rate limit. Inverts Peukert's law:
    /// `I = (usable · I_rated^(k-1) / hours)^(1/k)`.
    pub fn sustainable_power(&self, duration: SimDuration) -> f64 {
        let hours = duration.as_hours_f64();
        if hours <= 0.0 {
            return self.spec.max_discharge_power_w();
        }
        let usable = self.usable_rated_ah();
        if usable <= 0.0 {
            return 0.0;
        }
        let k = self.spec.peukert_exponent;
        let i_rated = self.spec.rated_current_a();
        let i = (usable * i_rated.powf(k - 1.0) / hours).powf(1.0 / k);
        (i * self.spec.voltage_v).min(self.spec.max_discharge_power_w())
    }

    /// Discharge at `power_w` for `dt`. If the DoD floor arrives first the
    /// discharge is truncated there. Requests above the C-rate limit are
    /// clamped to it (the power electronics current-limit).
    pub fn discharge(&mut self, power_w: f64, dt: SimDuration) -> DischargeOutcome {
        self.discharge_memoized(power_w, dt, &mut |spec, current| {
            spec.peukert_drain_ah_per_hour(current)
        })
    }

    /// As [`Battery::discharge`], with the Peukert drain-rate computation
    /// routed through `drain`. The drain rate is a pure function of the
    /// discharge current and the spec, so a caller settling many
    /// same-spec batteries can memoize the `powf` behind it; passing
    /// [`BatterySpec::peukert_drain_ah_per_hour`] straight through (as
    /// [`Battery::discharge`] does) is the reference behavior, and any
    /// memo returning the same bits is byte-identical to it.
    pub fn discharge_memoized(
        &mut self,
        power_w: f64,
        dt: SimDuration,
        drain: &mut dyn FnMut(&BatterySpec, f64) -> f64,
    ) -> DischargeOutcome {
        if power_w <= 0.0 || dt.is_zero() || self.at_dod_floor() {
            return DischargeOutcome {
                delivered_wh: 0.0,
                sustained: SimDuration::ZERO,
            };
        }
        let power_w = power_w.min(self.spec.max_discharge_power_w());
        let drain = drain(&self.spec, self.current_for_power(power_w));
        let hours_to_floor = self.usable_rated_ah() / drain;
        let hours = dt.as_hours_f64().min(hours_to_floor);
        self.soc_rated_ah -= drain * hours;
        self.total_discharged_rated_ah += drain * hours;
        DischargeOutcome {
            delivered_wh: power_w * hours,
            sustained: SimDuration::from_secs_f64(hours * 3_600.0),
        }
    }

    /// Charge with `power_w` available at the bus for `dt`. Acceptance is
    /// limited by the charge C-rate and the remaining headroom; returns the
    /// power actually drawn from the source (W, before efficiency losses).
    pub fn charge(&mut self, power_w: f64, dt: SimDuration) -> f64 {
        if power_w <= 0.0 || dt.is_zero() || self.is_full() {
            return 0.0;
        }
        let accepted_w = power_w.min(self.spec.max_charge_power_w());
        let hours = dt.as_hours_f64();
        // Ah restored after coulombic losses.
        let ah_in = accepted_w * self.spec.charge_efficiency / self.spec.voltage_v * hours;
        let headroom = self.spec.capacity_ah - self.soc_rated_ah;
        if ah_in <= headroom {
            self.soc_rated_ah += ah_in;
            accepted_w
        } else {
            // Only part of the interval was needed; report the average draw.
            self.soc_rated_ah = self.spec.capacity_ah;
            accepted_w * (headroom / ah_in)
        }
    }

    /// Equivalent full cycles at the DoD cap consumed so far
    /// (`total discharge / (capacity × max_dod)`).
    pub fn equivalent_cycles(&self) -> f64 {
        self.total_discharged_rated_ah / (self.spec.capacity_ah * self.spec.max_dod)
    }

    /// Fraction of rated cycle life consumed, in `[0, ∞)`.
    pub fn lifetime_fraction_used(&self) -> f64 {
        self.equivalent_cycles() / self.spec.cycle_life_at_max_dod
    }

    /// Instantly restore to full charge **without** counting a grid draw —
    /// test/setup helper only; in the engine recharging goes through
    /// [`Battery::charge`].
    pub fn reset_full(&mut self) {
        self.soc_rated_ah = self.spec.capacity_ah;
    }

    /// Permanently fade the rated capacity to `factor ×` its current value
    /// (aging / fault injection). The stored charge scales with the plates,
    /// so the SoC *fraction* is preserved; the factor is clamped to
    /// `[0.05, 1.0]` to keep the unit physically meaningful.
    pub fn fade_capacity(&mut self, factor: f64) {
        let factor = if factor.is_finite() {
            factor.clamp(0.05, 1.0)
        } else {
            1.0
        };
        self.spec.capacity_ah *= factor;
        self.soc_rated_ah *= factor;
        self.total_discharged_rated_ah *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batt_10ah() -> Battery {
        Battery::new_full(BatterySpec::paper_batt())
    }

    #[test]
    fn paper_derating_example_holds() {
        // Paper §II: "while the rated capacity is 24Ah at a 20-hour
        // discharging rate, the capacity drops to only 12Ah at a 12-min
        // discharging rate." With k = 1.15 the model gives ~13.5 Ah, the
        // right order of derating (the paper's numbers are for a specific
        // commercial unit).
        let spec = BatterySpec::paper_vrla(24.0);
        // Find the current that empties the pack in 12 minutes.
        let b = Battery::new_full(BatterySpec {
            max_dod: 1.0,
            ..spec.clone()
        });
        let p = b.sustainable_power(SimDuration::from_mins(12));
        let i = p / 12.0;
        let eff = spec.effective_capacity_ah(i);
        assert!((11.0..16.0).contains(&eff), "effective capacity {eff} Ah");
    }

    #[test]
    fn full_sprint_on_10ah_lasts_just_over_ten_minutes() {
        // Paper §IV-B: RE-Batt (10 Ah) "can sustain more than 10 minutes at
        // the maximal power burst" (155 W full-server sprint).
        let b = batt_10ah();
        let d = b.max_discharge_duration(155.0);
        let mins = d.as_secs_f64() / 60.0;
        assert!((10.0..14.0).contains(&mins), "sustained {mins} min");
    }

    #[test]
    fn sbatt_lasts_only_a_few_minutes_at_full_sprint() {
        let b = Battery::new_full(BatterySpec::paper_sbatt());
        let mins = b.max_discharge_duration(155.0).as_secs_f64() / 60.0;
        assert!((1.0..6.0).contains(&mins), "sustained {mins} min");
    }

    #[test]
    fn rated_current_and_energy() {
        let s = BatterySpec::paper_batt();
        assert!((s.rated_current_a() - 0.5).abs() < 1e-12);
        assert!((s.rated_energy_wh() - 120.0).abs() < 1e-12);
        assert!((s.usable_energy_wh() - 48.0).abs() < 1e-12);
    }

    #[test]
    fn peukert_drain_is_superlinear() {
        let s = BatterySpec::paper_batt();
        let d1 = s.peukert_drain_ah_per_hour(1.0);
        let d2 = s.peukert_drain_ah_per_hour(2.0);
        assert!(
            d2 > 2.0 * d1,
            "doubling current must more than double drain"
        );
        // At the rated current the drain equals the current (no derating).
        let dr = s.peukert_drain_ah_per_hour(s.rated_current_a());
        assert!((dr - s.rated_current_a()).abs() < 1e-12);
        assert_eq!(s.peukert_drain_ah_per_hour(0.0), 0.0);
    }

    #[test]
    fn effective_capacity_decreases_with_current() {
        let s = BatterySpec::paper_batt();
        assert!((s.effective_capacity_ah(0.0) - 10.0).abs() < 1e-12);
        let c_low = s.effective_capacity_ah(0.5);
        let c_high = s.effective_capacity_ah(13.0);
        assert!(c_high < c_low);
        assert!(c_high < 10.0);
    }

    #[test]
    fn discharge_respects_dod_floor() {
        let mut b = batt_10ah();
        // Drain far longer than the battery can sustain.
        let out = b.discharge(155.0, SimDuration::from_hours(2));
        assert!(b.at_dod_floor());
        assert!(out.sustained < SimDuration::from_hours(2));
        assert!(out.delivered_wh > 0.0);
        // SoC never goes below 1 - max_dod.
        assert!(b.soc_fraction() >= 0.6 - 1e-9, "soc={}", b.soc_fraction());
        // Further discharge yields nothing.
        let out2 = b.discharge(155.0, SimDuration::from_mins(1));
        assert_eq!(out2.delivered_wh, 0.0);
    }

    #[test]
    fn discharge_energy_accounting() {
        let mut b = batt_10ah();
        let out = b.discharge(120.0, SimDuration::from_mins(5));
        assert_eq!(out.sustained, SimDuration::from_mins(5));
        assert!((out.delivered_wh - 120.0 * 5.0 / 60.0).abs() < 1e-9);
        assert!(b.soc_fraction() < 1.0);
    }

    #[test]
    fn sustainable_power_inverts_duration() {
        let b = batt_10ah();
        for mins in [5u64, 10, 30, 60] {
            let d = SimDuration::from_mins(mins);
            let p = b.sustainable_power(d);
            if p < b.spec().max_discharge_power_w() {
                let lasts = b.max_discharge_duration(p);
                let err = (lasts.as_secs_f64() - d.as_secs_f64()).abs() / d.as_secs_f64();
                assert!(err < 1e-6, "mins={mins} err={err}");
            }
        }
    }

    #[test]
    fn sustainable_power_longer_duration_is_lower() {
        let b = batt_10ah();
        let p10 = b.sustainable_power(SimDuration::from_mins(10));
        let p60 = b.sustainable_power(SimDuration::from_mins(60));
        assert!(p60 < p10);
    }

    #[test]
    fn charge_restores_soc_with_losses() {
        let mut b = batt_10ah();
        b.discharge(100.0, SimDuration::from_mins(10));
        let before = b.soc_fraction();
        let drawn = b.charge(30.0, SimDuration::from_mins(30));
        assert!(drawn > 0.0 && drawn <= 30.0);
        assert!(b.soc_fraction() > before);
    }

    #[test]
    fn charge_respects_c_rate_and_headroom() {
        let mut b = batt_10ah();
        b.discharge(100.0, SimDuration::from_mins(2));
        // Offer far more than the charge limit.
        let drawn = b.charge(10_000.0, SimDuration::from_secs(1));
        assert!(drawn <= b.spec().max_charge_power_w() + 1e-9);
        // A full battery accepts nothing.
        b.reset_full();
        assert_eq!(b.charge(100.0, SimDuration::from_mins(5)), 0.0);
    }

    #[test]
    fn charge_stops_at_full() {
        let mut b = batt_10ah();
        b.discharge(50.0, SimDuration::from_mins(1));
        // Hours of charging cannot overfill.
        b.charge(30.0, SimDuration::from_hours(20));
        assert!(b.is_full());
        assert!(b.soc_fraction() <= 1.0 + 1e-12);
    }

    #[test]
    fn cycle_accounting() {
        let mut b = batt_10ah();
        // One full allowed swing = 1 equivalent cycle.
        b.discharge(
            b.sustainable_power(SimDuration::from_hours(4)),
            SimDuration::from_hours(10),
        );
        assert!(b.at_dod_floor());
        assert!(
            (b.equivalent_cycles() - 1.0).abs() < 0.05,
            "cycles={}",
            b.equivalent_cycles()
        );
        assert!(b.lifetime_fraction_used() > 0.0);
        assert!(b.lifetime_fraction_used() < 0.01);
    }

    #[test]
    fn discharge_above_c_rate_is_clamped() {
        let mut b = batt_10ah();
        let max_p = b.spec().max_discharge_power_w();
        let out = b.discharge(max_p * 3.0, SimDuration::from_secs(10));
        // Energy delivered corresponds to the clamped power, not the request.
        let expected = max_p * 10.0 / 3_600.0;
        assert!((out.delivered_wh - expected).abs() < 1e-6);
        assert_eq!(b.max_discharge_duration(max_p * 3.0), SimDuration::ZERO);
    }

    #[test]
    fn fade_preserves_soc_fraction_and_shrinks_energy() {
        let mut b = batt_10ah();
        b.discharge(100.0, SimDuration::from_mins(5));
        let soc = b.soc_fraction();
        let before_w = b.sustainable_power(SimDuration::from_mins(10));
        b.fade_capacity(0.8);
        assert!((b.spec().capacity_ah - 8.0).abs() < 1e-12);
        assert!((b.soc_fraction() - soc).abs() < 1e-12, "SoC preserved");
        assert!(b.sustainable_power(SimDuration::from_mins(10)) < before_w);
        // Degenerate factors are clamped, never zeroing the pack.
        b.fade_capacity(0.0);
        assert!(b.spec().capacity_ah >= 8.0 * 0.05 - 1e-12);
        b.fade_capacity(f64::NAN);
        assert!(b.spec().capacity_ah.is_finite());
        assert!(b.soc_fraction().is_finite());
    }

    #[test]
    fn zero_requests_are_noops() {
        let mut b = batt_10ah();
        assert_eq!(
            b.discharge(0.0, SimDuration::from_mins(1)).delivered_wh,
            0.0
        );
        assert_eq!(b.discharge(100.0, SimDuration::ZERO).delivered_wh, 0.0);
        assert_eq!(b.charge(0.0, SimDuration::from_mins(1)), 0.0);
        assert!(b.is_full());
    }
}
