//! Per-source energy accounting (the prototype's "external power meter").

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The power sources GreenSprint distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Source {
    /// Utility grid.
    Grid,
    /// On-site renewable (PV).
    Renewable,
    /// Battery discharge.
    Battery,
}

impl Source {
    /// All sources, in display order.
    pub const ALL: [Source; 3] = [Source::Grid, Source::Renewable, Source::Battery];
}

impl std::fmt::Display for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Source::Grid => "grid",
            Source::Renewable => "renewable",
            Source::Battery => "battery",
        };
        f.write_str(s)
    }
}

/// An energy meter accumulating watt-hours per source, plus curtailment
/// (renewable energy that was available but unused — the paper's sprinting
/// raises renewable *utilization*, which we can therefore report).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PowerMeter {
    wh: BTreeMap<Source, f64>,
    curtailed_renewable_wh: f64,
}

impl PowerMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `power_w` drawn from `source` for `hours`.
    pub fn record(&mut self, source: Source, power_w: f64, hours: f64) {
        if power_w > 0.0 && hours > 0.0 {
            *self.wh.entry(source).or_insert(0.0) += power_w * hours;
        }
    }

    /// Record renewable power that was produced but not used or stored.
    pub fn record_curtailment(&mut self, power_w: f64, hours: f64) {
        if power_w > 0.0 && hours > 0.0 {
            self.curtailed_renewable_wh += power_w * hours;
        }
    }

    /// Energy drawn from a source so far (Wh).
    pub fn energy_wh(&self, source: Source) -> f64 {
        self.wh.get(&source).copied().unwrap_or(0.0)
    }

    /// Total energy across all sources (Wh).
    pub fn total_wh(&self) -> f64 {
        self.wh.values().sum()
    }

    /// Renewable energy wasted so far (Wh).
    pub fn curtailed_wh(&self) -> f64 {
        self.curtailed_renewable_wh
    }

    /// Fraction of available renewable energy actually used
    /// (used / (used + curtailed)); `None` if no renewable was available.
    pub fn renewable_utilization(&self) -> Option<f64> {
        let used = self.energy_wh(Source::Renewable);
        let avail = used + self.curtailed_renewable_wh;
        if avail <= 0.0 {
            None
        } else {
            Some(used / avail)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_source() {
        let mut m = PowerMeter::new();
        m.record(Source::Grid, 100.0, 2.0);
        m.record(Source::Grid, 50.0, 1.0);
        m.record(Source::Renewable, 200.0, 0.5);
        assert_eq!(m.energy_wh(Source::Grid), 250.0);
        assert_eq!(m.energy_wh(Source::Renewable), 100.0);
        assert_eq!(m.energy_wh(Source::Battery), 0.0);
        assert_eq!(m.total_wh(), 350.0);
    }

    #[test]
    fn ignores_nonpositive_records() {
        let mut m = PowerMeter::new();
        m.record(Source::Grid, -5.0, 1.0);
        m.record(Source::Grid, 5.0, 0.0);
        assert_eq!(m.total_wh(), 0.0);
    }

    #[test]
    fn renewable_utilization() {
        let mut m = PowerMeter::new();
        assert_eq!(m.renewable_utilization(), None);
        m.record(Source::Renewable, 100.0, 1.0);
        m.record_curtailment(100.0, 1.0);
        assert_eq!(m.renewable_utilization(), Some(0.5));
        assert_eq!(m.curtailed_wh(), 100.0);
    }

    #[test]
    fn source_display() {
        assert_eq!(Source::Grid.to_string(), "grid");
        assert_eq!(Source::ALL.len(), 3);
    }
}
