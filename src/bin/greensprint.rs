//! `greensprint` — the operator CLI.
//!
//! ```text
//! greensprint simulate [--app jbb|websearch|memcached] [--config re-batt|re-only|re-sbatt|sre-sbatt]
//!                      [--strategy greedy|parallel|pacing|hybrid|normal] [--availability min|med|max]
//!                      [--minutes N] [--intensity K] [--seed N] [--analytic]
//!                      [--hysteresis F] [--trace FILE.csv]
//!                      [--warm-policy FILE] [--save-policy FILE] [--scenario FILE.json]
//!                      [--checkpoint FILE] [--snapshot-every N]
//! greensprint campaign [--days N] [--spikes N] [--app ...] [--strategy ...] [--seed N]
//!                      [--checkpoint FILE] [--snapshot-every N]
//! greensprint sweep [--apps A,B] [--strategies S,..] [--availabilities L,..] [--minutes M,..]
//!                   [--configs C,..] [--days N] [--intensity K] [--seed N] [--jobs N] [--analytic]
//!                   [--checkpoint FILE | --resume FILE] [--retries N] [--task-timeout-epochs N]
//! greensprint chaos [--plan FILE.json] [--fault-seed N] [--runs R] [--jobs N]
//!                   [--fleet] [--crashes N] [--flaps N] [--stragglers N]
//!                   [--app ...] [--strategy ...] [--availability ...] [--minutes N] [--analytic]
//!                   [--checkpoint FILE | --resume FILE] [--retries N] [--task-timeout-epochs N]
//! greensprint datacenter [--racks N] [--apps A,B] [--configs C,..] [--strategies S,..]
//!                   [--availability min|med|max] [--minutes N] [--intensity K] [--seed N]
//!                   [--analytic] [--jobs N] [--site-plan FILE.json | --site-seed N]
//!                   [--checkpoint FILE | --resume FILE] [--snapshot-every N]
//! greensprint serve [--sim-time] [--rate F] [--throttle-ms N] [--tick-budget-ms N]
//!                   [--overrun skip|degrade] [--stale-after N] [--disturb-seed N]
//!                   [--metrics FILE] [--heartbeat FILE] [--snapshot FILE] [--snapshot-every N]
//!                   [--feed FILE|-] [--control none|sim|sysfs] [--sysfs-root DIR] [--retries N]
//!                   [--resume FILE] [--drain-after N] [--metrics-buffer N]
//!                   [--app ...] [--strategy ...] [--guardrail on] [--scenario FILE.json]
//! greensprint resume FILE [--jobs N] [--retries N] [--task-timeout-epochs N] [--snapshot-every N]
//! greensprint qtable (validate|dump) FILE
//! greensprint trace (solar|wind) [--days N] [--seed N] --out FILE.csv
//! greensprint tco [--hours H]
//! greensprint bench [--quick] [--force] [--reps N] [--out FILE.json]
//! ```

use greensprint_repro::power::trace_io;
use greensprint_repro::power::wind::WindModel;
use greensprint_repro::prelude::*;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::process::exit;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage("missing subcommand");
    }
    let cmd = args.remove(0);
    let (flags, positional) = parse_flags(&args);
    match cmd.as_str() {
        "simulate" => simulate(&flags),
        "campaign" => campaign(&flags),
        "sweep" => sweep(&flags),
        "chaos" => chaos(&flags),
        "datacenter" => datacenter(&flags),
        "serve" => serve_cmd(&flags),
        "resume" => resume_cmd(&positional, &flags),
        "qtable" => qtable(&positional),
        "trace" => trace(&positional, &flags),
        "tco" => tco(&flags),
        "bench" => bench(&flags),
        "help" | "--help" | "-h" => usage(""),
        other => usage(&format!("unknown subcommand: {other}")),
    }
}

/// Split `--key value` pairs (and bare `--switch`es) from positional args.
fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let next_is_value = args.get(i + 1).is_some_and(|v| !v.starts_with("--"));
            if next_is_value {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), String::from("true"));
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    (flags, positional)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: --{key} cannot parse {v:?}");
            exit(2);
        }),
    }
}

/// A runtime (non-usage) failure: message to stderr, exit 1.
fn fatal(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1);
}

/// Serialize one sweep record as its JSON output line.
fn result_line(r: &SweepResult) -> String {
    serde_json::to_string(r).unwrap_or_else(|e| fatal(&format!("cannot serialize result: {e}")))
}

/// Durably replace the snapshot checkpoint at `path` (write-then-rename,
/// so a crash mid-write leaves the previous snapshot intact).
fn write_snapshot(path: &str, snap: &EngineSnapshot) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, snap.to_json())
        .and_then(|()| std::fs::rename(&tmp, path))
        .unwrap_or_else(|e| fatal(&format!("cannot write checkpoint {path}: {e}")));
}

fn supervisor_policy(flags: &HashMap<String, String>) -> SupervisorPolicy {
    SupervisorPolicy {
        max_retries: get(flags, "retries", 2_u32),
        task_timeout_epochs: get(flags, "task-timeout-epochs", 0_u64),
    }
}

fn snapshot_every(flags: &HashMap<String, String>) -> u64 {
    let every: u64 = get(flags, "snapshot-every", 10);
    if every == 0 {
        usage("--snapshot-every must be at least 1");
    }
    every
}

/// Run a prepared point list, supervised when any robustness flag
/// (`--checkpoint`, `--retries`, `--task-timeout-epochs`) asks for it,
/// on the plain executor otherwise. Returns the full result set in
/// submission order; `on_result` streams completion-order output.
fn execute_points(
    points: Vec<SweepPoint>,
    master_seed: u64,
    jobs: usize,
    flags: &HashMap<String, String>,
    mode: &str,
    on_result: impl FnMut(&SweepResult),
) -> Vec<SweepResult> {
    let supervised = flags.contains_key("checkpoint")
        || flags.contains_key("retries")
        || flags.contains_key("task-timeout-epochs");
    if !supervised {
        return run_sweep_streaming(points, master_seed, jobs, on_result);
    }
    let mut journal = flags.get("checkpoint").map(|path| {
        let p = Path::new(path);
        if p.exists() {
            usage(&format!(
                "checkpoint {path} already exists; `greensprint resume {path}` continues it, \
                 or remove the file to start over"
            ));
        }
        Journal::create(p, &JournalHeader::new(mode, master_seed, points.clone()))
            .unwrap_or_else(|e| fatal(&format!("cannot create checkpoint {path}: {e}")))
    });
    let policy = supervisor_policy(flags);
    let (results, report) = run_supervised_sweep(
        points,
        master_seed,
        jobs,
        &policy,
        &HashSet::new(),
        journal.as_mut(),
        on_result,
    );
    report_supervision(&report);
    results
}

fn report_supervision(report: &SweepReport) {
    eprintln!("supervisor: {}", report.summary());
    for r in &report.retried {
        eprintln!(
            "  retried #{} {}: {} attempts",
            r.index, r.label, r.attempts
        );
    }
    for f in &report.failed {
        eprintln!("  failed #{} {}: {}", f.index, f.label, f.error);
    }
}

/// The chaos pass/fail verdict over a completed result set: exit 1 when
/// any run lost the Normal floor, overdrew the grid cap, tripped the
/// runtime invariant auditor, or did not complete at all.
fn chaos_gate(results: &[SweepResult]) {
    let runs = results.len();
    let mut violations = 0usize;
    let mut failures = 0usize;
    for r in results {
        match &r.outcome {
            SweepOutcome::Burst(b) => {
                if !b.floor_held || b.grid_overload_wh != 0.0 || !b.audit_violations.is_empty() {
                    violations += 1;
                }
            }
            SweepOutcome::Failed(_) => failures += 1,
            SweepOutcome::Campaign(_) => {}
        }
    }
    if violations > 0 || failures > 0 {
        if violations > 0 {
            eprintln!(
                "error: {violations} chaos run(s) violated the safety floor or the invariant audit"
            );
        }
        if failures > 0 {
            eprintln!("error: {failures} chaos run(s) did not complete");
        }
        exit(1);
    }
    eprintln!(
        "chaos: {runs} run(s), all held the Normal floor with zero grid overload and a clean \
         invariant audit"
    );
}

fn parse_app(s: &str) -> Application {
    match s {
        "jbb" | "specjbb" => Application::SpecJbb,
        "websearch" | "ws" | "web-search" => Application::WebSearch,
        "memcached" | "mc" => Application::Memcached,
        other => usage(&format!("unknown --app {other}")),
    }
}

fn app_of(flags: &HashMap<String, String>) -> Application {
    parse_app(flags.get("app").map(String::as_str).unwrap_or("jbb"))
}

fn parse_green(s: &str) -> GreenConfig {
    match s {
        "re-batt" => GreenConfig::re_batt(),
        "re-only" => GreenConfig::re_only(),
        "re-sbatt" => GreenConfig::re_sbatt(),
        "sre-sbatt" => GreenConfig::sre_sbatt(),
        other => usage(&format!("unknown --config {other}")),
    }
}

fn green_of(flags: &HashMap<String, String>) -> GreenConfig {
    parse_green(flags.get("config").map(String::as_str).unwrap_or("re-batt"))
}

fn parse_strategy(s: &str) -> Strategy {
    match s {
        "normal" => Strategy::Normal,
        "greedy" => Strategy::Greedy,
        "parallel" => Strategy::Parallel,
        "pacing" => Strategy::Pacing,
        "hybrid" => Strategy::Hybrid,
        other => usage(&format!("unknown --strategy {other}")),
    }
}

fn strategy_of(flags: &HashMap<String, String>) -> Strategy {
    parse_strategy(
        flags
            .get("strategy")
            .map(String::as_str)
            .unwrap_or("hybrid"),
    )
}

fn parse_availability(s: &str) -> AvailabilityLevel {
    match s {
        "min" | "minimum" => AvailabilityLevel::Minimum,
        "med" | "medium" => AvailabilityLevel::Medium,
        "max" | "maximum" => AvailabilityLevel::Maximum,
        other => usage(&format!("unknown --availability {other}")),
    }
}

fn availability_of(flags: &HashMap<String, String>) -> AvailabilityLevel {
    parse_availability(
        flags
            .get("availability")
            .map(String::as_str)
            .unwrap_or("med"),
    )
}

/// A comma-separated grid axis: `--apps jbb,memcached`.
fn axis<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> Vec<&'a str> {
    flags
        .get(key)
        .map(String::as_str)
        .unwrap_or(default)
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Apply the guardrail flags (`--guardrail on|off`, `--fallback STRATEGY`,
/// `--quarantine-dir DIR`) on top of a base configuration. Used by every
/// subcommand that builds an [`EngineConfig`], so scenario files, plain
/// flag runs, and sweep/chaos grids all accept the same switches.
fn apply_guardrail_flags(cfg: &mut EngineConfig, flags: &HashMap<String, String>) {
    if let Some(v) = flags.get("guardrail") {
        cfg.guardrail.enabled = match v.as_str() {
            "on" | "true" => true,
            "off" | "false" => false,
            other => usage(&format!("--guardrail takes on|off, got {other}")),
        };
    }
    if let Some(s) = flags.get("fallback") {
        cfg.guardrail.fallback = parse_strategy(s);
    }
    if let Some(dir) = flags.get("quarantine-dir") {
        cfg.guardrail.quarantine_dir = Some(dir.clone());
    }
}

fn engine_cfg(flags: &HashMap<String, String>) -> EngineConfig {
    // A scenario file provides the base configuration; every other flag
    // then overrides it. Missing fields take the library defaults
    // (EngineConfig deserializes with per-field defaults).
    if let Some(path) = flags.get("scenario") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read scenario {path}: {e}")));
        let mut cfg: EngineConfig = serde_json::from_str(&text)
            .unwrap_or_else(|e| usage(&format!("invalid scenario {path}: {e}")));
        // Flag overrides on top of the file.
        if flags.contains_key("app") {
            cfg.app = app_of(flags);
        }
        if flags.contains_key("config") {
            cfg.green = green_of(flags);
        }
        if flags.contains_key("strategy") {
            cfg.strategy = strategy_of(flags);
        }
        if flags.contains_key("availability") {
            cfg.availability = availability_of(flags);
        }
        if flags.contains_key("minutes") {
            cfg.burst_duration = SimDuration::from_mins(get(flags, "minutes", 10_u64));
        }
        if flags.contains_key("seed") {
            cfg.seed = get(flags, "seed", 7_u64);
        }
        if flags.contains_key("analytic") {
            cfg.measurement = MeasurementMode::Analytic;
        }
        apply_guardrail_flags(&mut cfg, flags);
        return cfg;
    }
    let trace_override = flags.get("trace").map(|path| {
        trace_io::read_csv(path)
            .unwrap_or_else(|e| usage(&format!("cannot read trace {path}: {e}")))
    });
    let warm_policy_json = flags.get("warm-policy").map(|path| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read policy {path}: {e}")))
    });
    let mut cfg = EngineConfig {
        app: app_of(flags),
        green: green_of(flags),
        strategy: strategy_of(flags),
        availability: availability_of(flags),
        burst_duration: SimDuration::from_mins(get(flags, "minutes", 10_u64)),
        burst_intensity_cores: get(flags, "intensity", 12_u8),
        measurement: if flags.contains_key("analytic") {
            MeasurementMode::Analytic
        } else {
            MeasurementMode::Des
        },
        switch_hysteresis: get(flags, "hysteresis", 0.0_f64),
        trace_override,
        warm_policy_json,
        seed: get(flags, "seed", 7_u64),
        ..EngineConfig::default()
    };
    apply_guardrail_flags(&mut cfg, flags);
    cfg
}

fn simulate(flags: &HashMap<String, String>) {
    let cfg = engine_cfg(flags);
    println!(
        "simulating: {} on {} ({} servers, {:.1} Ah), {} strategy, {} availability, {} burst",
        cfg.app,
        cfg.green.name,
        cfg.green.green_servers,
        cfg.green.battery_ah,
        cfg.strategy,
        cfg.availability,
        cfg.burst_duration,
    );
    let save_policy = flags.get("save-policy").cloned();
    let engine = Engine::try_new(cfg).unwrap_or_else(|e| usage(&e.to_string()));
    let (out, _, policy) = match flags.get("checkpoint") {
        None => engine.run_full(),
        Some(path) => engine
            .run_full_with_snapshots(snapshot_every(flags), &mut |s| write_snapshot(path, s))
            .unwrap_or_else(|e| usage(&e.to_string())),
    };
    print_burst_result(&out);
    if let (Some(path), Some(json)) = (save_policy, policy) {
        std::fs::write(&path, json).unwrap_or_else(|e| fatal(&format!("cannot write {path}: {e}")));
        println!("  policy            : saved to {path}");
    }
}

fn print_burst_result(out: &BurstOutcome) {
    println!("\nresult:");
    println!("  speedup vs Normal : {:.2}x", out.speedup_vs_normal);
    println!(
        "  goodput           : {:.1} req/s/server (Normal {:.1})",
        out.mean_goodput_rps, out.normal_baseline_rps
    );
    println!("  SLO attainment    : {:.1}%", out.slo_attainment * 100.0);
    println!(
        "  energy            : {:.1} Wh renewable + {:.1} Wh battery ({:.1} Wh curtailed)",
        out.re_used_wh, out.battery_used_wh, out.curtailed_wh
    );
    println!(
        "  battery           : {:.3} equivalent cycles; {:.1} Wh grid recharge afterwards",
        out.battery_cycles, out.grid_recharge_wh
    );
    println!(
        "  thermals          : peak {:.1} degC, {} throttled epochs",
        out.peak_temp_c, out.thermal_throttle_epochs
    );
    println!(
        "  knob churn        : {} setting transitions",
        out.setting_transitions
    );
    if !out.audit_violations.is_empty() {
        eprintln!(
            "warning: {} invariant audit violation(s); first: {}",
            out.audit_violations.len(),
            out.audit_violations[0]
        );
    }
}

fn campaign(flags: &HashMap<String, String>) {
    let cfg = CampaignConfig {
        engine: engine_cfg(flags),
        days: get(flags, "days", 3_u32),
        spikes_per_day: get(flags, "spikes", 4_u32),
        peak_intensity_cores: get(flags, "intensity", 12_u8),
    };
    let out = match flags.get("checkpoint") {
        None => try_run_campaign(&cfg),
        Some(path) => try_run_campaign_with_snapshots(&cfg, snapshot_every(flags), &mut |s| {
            write_snapshot(path, s)
        }),
    }
    .unwrap_or_else(|e| usage(&e.to_string()));
    print_campaign_result(&out);
}

fn print_campaign_result(out: &CampaignOutcome) {
    let tco = TcoParams::paper();
    println!("campaign over {} day(s):", out.days);
    println!(
        "  sprint hours        : {:.1} ({:.1} server-hours)",
        out.sprint_hours, out.sprint_server_hours
    );
    println!(
        "  extrapolated        : {:.0} h/year (break-even {:.1})",
        out.sprint_hours_per_year,
        tco.crossover_hours()
    );
    println!("  goodput vs Normal   : {:.2}x", out.goodput_vs_normal);
    println!(
        "  POI                 : {:+.0} $/KW/year",
        tco.poi(out.sprint_hours_per_year)
    );
    if !out.run.audit_violations.is_empty() {
        eprintln!(
            "warning: {} invariant audit violation(s); first: {}",
            out.run.audit_violations.len(),
            out.run.audit_violations[0]
        );
    }
}

/// `greensprint sweep` — run a grid of bursts (or campaigns, with
/// `--days`) through the deterministic parallel executor, one JSON line
/// per completed point, in completion order. Results are bit-identical
/// for any `--jobs` value.
fn sweep(flags: &HashMap<String, String>) {
    let jobs: usize = get(flags, "jobs", default_jobs());
    if jobs == 0 {
        usage("--jobs must be at least 1");
    }
    if resume_flag(flags, "sweep") {
        return;
    }
    let seed: u64 = get(flags, "seed", 7);
    let intensity: u8 = get(flags, "intensity", 12);
    let measurement = if flags.contains_key("analytic") {
        MeasurementMode::Analytic
    } else {
        MeasurementMode::Des
    };
    let days: u32 = get(flags, "days", 0);

    let apps = axis(flags, "apps", "jbb");
    let strategies = axis(flags, "strategies", "greedy,parallel,pacing,hybrid");
    let availabilities = axis(flags, "availabilities", "min,med,max");
    let minutes = axis(flags, "minutes", "10,15,30,60");
    let greens = axis(flags, "configs", "re-batt");

    let mut points = Vec::new();
    for app in &apps {
        for green in &greens {
            for strat in &strategies {
                for avail in &availabilities {
                    let mut base = EngineConfig {
                        app: parse_app(app),
                        green: parse_green(green),
                        strategy: parse_strategy(strat),
                        availability: parse_availability(avail),
                        burst_intensity_cores: intensity,
                        measurement,
                        ..EngineConfig::default()
                    };
                    apply_guardrail_flags(&mut base, flags);
                    if days > 0 {
                        let label = format!("{app}/{green}/{strat}/{avail}/{days}day");
                        points.push(SweepPoint::campaign(
                            label,
                            CampaignConfig {
                                engine: base,
                                days,
                                spikes_per_day: get(flags, "spikes", 4),
                                peak_intensity_cores: intensity,
                            },
                        ));
                    } else {
                        for mins in &minutes {
                            let m: u64 = mins.parse().unwrap_or_else(|_| {
                                usage(&format!("--minutes cannot parse {mins:?}"))
                            });
                            let label = format!("{app}/{green}/{strat}/{avail}/{m}min");
                            let cfg = EngineConfig {
                                burst_duration: SimDuration::from_mins(m),
                                ..base.clone()
                            };
                            points.push(SweepPoint::burst(label, cfg));
                        }
                    }
                }
            }
        }
    }
    // Reject bad configurations up front with a usage message instead of
    // letting a worker thread panic mid-sweep.
    for p in &points {
        let check = match &p.task {
            SweepTask::Burst(cfg) => cfg.validate(),
            SweepTask::Campaign(cfg) => cfg.validate(),
        };
        if let Err(e) = check {
            usage(&format!("invalid sweep point {}: {e}", p.label));
        }
    }
    execute_points(points, seed, jobs, flags, "sweep", |r| {
        println!("{}", result_line(r));
    });
}

/// Handle `sweep --resume FILE` / `chaos --resume FILE`: continue the
/// journal in place (its embedded points define the grid; grid flags are
/// ignored). Returns true when a resume ran.
fn resume_flag(flags: &HashMap<String, String>, mode: &str) -> bool {
    let Some(path) = flags.get("resume") else {
        return false;
    };
    if flags.contains_key("checkpoint") {
        usage("--resume and --checkpoint are mutually exclusive; a resumed journal keeps appending in place");
    }
    let (journal, loaded) = Journal::resume(Path::new(path))
        .unwrap_or_else(|e| usage(&format!("cannot resume {path}: {e}")));
    if loaded.header.mode != mode {
        usage(&format!(
            "checkpoint {path} is a {} journal; resume it with `greensprint {} --resume` or `greensprint resume`",
            loaded.header.mode, loaded.header.mode
        ));
    }
    resume_journal(path, journal, loaded, flags);
    true
}

/// `greensprint chaos` — fault-injection runs. Each run applies a
/// [`FaultPlan`] (loaded from `--plan FILE.json`, or generated from
/// `--fault-seed`; `--fleet` generates server crash/flap/straggler plans
/// instead, with `--crashes/--flaps/--stragglers` picking the mix) to a
/// burst and fans the batch through the same deterministic executor as
/// `sweep`: one JSON line per run, bit-identical for any `--jobs`. Exits 1
/// if any run loses the Normal goodput floor or overdraws the grid cap —
/// the invariants safe mode and capacity re-planning exist to keep.
fn chaos(flags: &HashMap<String, String>) {
    let jobs: usize = get(flags, "jobs", default_jobs());
    if jobs == 0 {
        usage("--jobs must be at least 1");
    }
    if resume_flag(flags, "chaos") {
        return;
    }
    let runs: usize = get(flags, "runs", 4);
    if runs == 0 {
        usage("--runs must be at least 1");
    }
    let fault_seed: u64 = get(flags, "fault-seed", 42);
    let fleet = flags.contains_key("fleet");
    let default_mix = FleetMix::default();
    let mix = FleetMix {
        crashes: get(flags, "crashes", default_mix.crashes),
        flaps: get(flags, "flaps", default_mix.flaps),
        stragglers: get(flags, "stragglers", default_mix.stragglers),
    };
    if !fleet
        && ["crashes", "flaps", "stragglers"]
            .iter()
            .any(|k| flags.contains_key(*k))
    {
        usage("--crashes/--flaps/--stragglers shape fleet plans; add --fleet");
    }
    if fleet && flags.contains_key("plan") {
        usage("--fleet generates plans; it cannot be combined with --plan");
    }
    let base = engine_cfg(flags);
    let file_plan: Option<FaultPlan> = flags.get("plan").map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read fault plan {path}: {e}")));
        FaultPlan::from_json(&text)
            .unwrap_or_else(|e| usage(&format!("invalid fault plan {path}: {e}")))
    });
    let start = SimTime::from_secs_f64(base.burst_start_hour * 3_600.0);
    let n_servers = base.green.green_servers.min(u8::MAX as usize) as u8;

    let mut points = Vec::new();
    for r in 0..runs {
        // A file plan repeats across runs (the engine seed still varies
        // per run via the executor); otherwise each run gets its own
        // independently seeded plan.
        let plan = file_plan.clone().unwrap_or_else(|| {
            if fleet {
                FaultPlan::generate_fleet(
                    derive_seed(fault_seed, r as u64),
                    start,
                    base.burst_duration,
                    n_servers,
                    mix,
                )
            } else {
                FaultPlan::generate(
                    derive_seed(fault_seed, r as u64),
                    start,
                    base.burst_duration,
                    n_servers,
                )
            }
        });
        let kind = if fleet { "fleet" } else { "plan" };
        let label = format!(
            "chaos/{}/{}/{}/{kind}{r}",
            base.app, base.strategy, base.availability
        );
        points.push(SweepPoint::burst(
            label,
            EngineConfig {
                fault_plan: Some(plan),
                ..base.clone()
            },
        ));
    }
    for p in &points {
        if let SweepTask::Burst(cfg) = &p.task {
            if let Err(e) = cfg.validate() {
                usage(&format!("invalid chaos point {}: {e}", p.label));
            }
        }
    }

    let results = execute_points(points, get(flags, "seed", 7), jobs, flags, "chaos", |r| {
        println!("{}", result_line(r));
    });
    chaos_gate(&results);
}

/// Durably replace a datacenter checkpoint (write-then-rename, like
/// [`write_snapshot`]).
fn write_dc_snapshot(path: &str, snap: &DatacenterSnapshot) {
    let tmp = format!("{path}.tmp");
    let json = snap
        .to_json()
        .unwrap_or_else(|e| fatal(&format!("cannot serialize checkpoint {path}: {e}")));
    std::fs::write(&tmp, json)
        .and_then(|()| std::fs::rename(&tmp, path))
        .unwrap_or_else(|e| fatal(&format!("cannot write checkpoint {path}: {e}")));
}

/// Build the [`DatacenterConfig`] from the flag grid: `--racks N` racks
/// cycling through the `--apps`/`--configs`/`--strategies` axes, a shared
/// template for everything else, and an optional site fault plan from
/// `--site-plan FILE` or a seeded `--site-seed` generator.
fn datacenter_cfg(flags: &HashMap<String, String>) -> DatacenterConfig {
    let n_racks: usize = get(flags, "racks", 4);
    if n_racks == 0 {
        usage("--racks must be at least 1");
    }
    let apps: Vec<Application> = axis(flags, "apps", "jbb,websearch,memcached")
        .iter()
        .map(|s| parse_app(s))
        .collect();
    let greens: Vec<GreenConfig> = axis(flags, "configs", "re-batt")
        .iter()
        .map(|s| parse_green(s))
        .collect();
    let strategies: Vec<Strategy> = axis(flags, "strategies", "hybrid")
        .iter()
        .map(|s| parse_strategy(s))
        .collect();
    if apps.is_empty() || greens.is_empty() || strategies.is_empty() {
        usage("--apps/--configs/--strategies need at least one entry each");
    }
    let racks: Vec<RackSpec> = (0..n_racks)
        .map(|i| RackSpec {
            app: apps[i % apps.len()],
            green: greens[i % greens.len()].clone(),
            strategy: strategies[i % strategies.len()],
        })
        .collect();
    let template = EngineConfig {
        availability: availability_of(flags),
        burst_duration: SimDuration::from_mins(get(flags, "minutes", 10_u64)),
        burst_intensity_cores: get(flags, "intensity", 12_u8),
        measurement: if flags.contains_key("analytic") {
            MeasurementMode::Analytic
        } else {
            MeasurementMode::Des
        },
        seed: get(flags, "seed", 7_u64),
        ..EngineConfig::default()
    };
    if flags.contains_key("site-plan") && flags.contains_key("site-seed") {
        usage("--site-plan and --site-seed both name a site fault plan; pick one");
    }
    let site_fault_plan = if let Some(path) = flags.get("site-plan") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read site fault plan {path}: {e}")));
        Some(
            FaultPlan::from_json(&text)
                .unwrap_or_else(|e| usage(&format!("invalid site fault plan {path}: {e}"))),
        )
    } else if flags.contains_key("site-seed") {
        let start = SimTime::from_secs_f64(template.burst_start_hour * 3_600.0);
        let n = n_racks.min(u8::MAX as usize) as u8;
        Some(FaultPlan::generate_site(
            get(flags, "site-seed", 42_u64),
            start,
            template.burst_duration,
            n,
        ))
    } else {
        None
    };
    DatacenterConfig {
        racks,
        template,
        site_fault_plan,
    }
}

/// Print a completed datacenter run — one JSON line per rack, the
/// human summary on stderr — and apply the chaos-style gate: exit 1 when
/// any rack lost the Normal floor, overdrew the grid, tripped its own
/// invariant auditor, or the site-level audit recorded a violation.
fn report_datacenter(out: &DatacenterOutcome) {
    #[derive(serde::Serialize)]
    struct RackLine {
        rack: usize,
        outcome: BurstOutcome,
        route: Option<RackRouteStats>,
    }
    for (i, o) in out.racks.iter().enumerate() {
        let line = RackLine {
            rack: i,
            outcome: o.clone(),
            route: out.route_stats.get(i).cloned(),
        };
        let text = serde_json::to_string(&line)
            .unwrap_or_else(|e| fatal(&format!("cannot serialize rack result: {e}")));
        println!("{text}");
    }
    eprint!(
        "{}",
        greensprint_repro::core::report::datacenter_summary(out)
    );
    let broken = out.racks.iter().filter(|o| !o.floor_held).count();
    let overloads = out
        .racks
        .iter()
        .filter(|o| o.grid_overload_wh != 0.0)
        .count();
    let rack_violations: usize = out.racks.iter().map(|o| o.audit_violations.len()).sum();
    if broken > 0 || overloads > 0 || rack_violations > 0 || !out.site_audit_violations.is_empty() {
        if broken > 0 {
            eprintln!("error: {broken} rack(s) lost the Normal floor");
        }
        if overloads > 0 {
            eprintln!("error: {overloads} rack(s) overdrew the grid cap");
        }
        if rack_violations > 0 {
            eprintln!("error: {rack_violations} rack-level invariant audit violation(s)");
        }
        for v in &out.site_audit_violations {
            eprintln!("error: site audit: {v}");
        }
        exit(1);
    }
    eprintln!(
        "datacenter: {} rack(s), all held the Normal floor with a clean site audit",
        out.racks.len()
    );
}

/// `greensprint datacenter` — run a multi-rack fleet through the
/// partition-tolerant broker, optionally under a site-level fault plan
/// (rack blackouts, broker partitions, lossy/laggy control links).
/// Flag parsing and exit codes only — behavior lives in
/// `greensprint::broker`.
fn datacenter(flags: &HashMap<String, String>) {
    let jobs: usize = get(flags, "jobs", default_jobs());
    if jobs == 0 {
        usage("--jobs must be at least 1");
    }
    if let Some(path) = flags.get("resume") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read checkpoint {path}: {e}")));
        let snap = DatacenterSnapshot::from_json(&text)
            .unwrap_or_else(|e| usage(&format!("invalid datacenter checkpoint {path}: {e}")));
        eprintln!(
            "resume: {path} — continuing at epoch {}",
            snap.broker.next_epoch
        );
        let every = snapshot_every(flags);
        let path = path.clone();
        let out =
            resume_datacenter_snapshot(snap, jobs, every, &mut |s| write_dc_snapshot(&path, s))
                .unwrap_or_else(|e| usage(&e));
        report_datacenter(&out);
        return;
    }
    let cfg = datacenter_cfg(flags);
    if let Err(e) = cfg.validate() {
        usage(&e);
    }
    let out = match flags.get("checkpoint") {
        None => try_run_datacenter(&cfg, jobs),
        Some(path) => {
            if Path::new(path).exists() {
                usage(&format!(
                    "checkpoint {path} already exists; `greensprint datacenter --resume {path}` \
                     continues it, or remove the file to start over"
                ));
            }
            let every = snapshot_every(flags);
            run_datacenter_with_snapshots(&cfg, jobs, every, &mut |s| write_dc_snapshot(path, s))
        }
    }
    .unwrap_or_else(|e| usage(&e));
    report_datacenter(&out);
}

/// `greensprint resume FILE` — continue an interrupted run from its
/// checkpoint. The file kind is detected: a sweep/chaos journal re-runs
/// the missing points (appending to the journal) and prints the *full*
/// result set, one JSON line per point in index order — byte-identical to
/// an uninterrupted `--jobs 1` run whatever `--jobs` is used here; an
/// engine snapshot finishes the burst or campaign and prints the usual
/// report.
fn resume_cmd(positional: &[String], flags: &HashMap<String, String>) {
    let path = positional.first().map(String::as_str).unwrap_or_else(|| {
        usage("resume needs a checkpoint FILE (a sweep journal or an engine snapshot)")
    });
    match Journal::resume(Path::new(path)) {
        Ok((journal, loaded)) => resume_journal(path, journal, loaded, flags),
        Err(JournalError::NotAJournal(_)) => resume_engine_snapshot(path, flags),
        Err(e) => usage(&format!("cannot resume {path}: {e}")),
    }
}

/// Finish a journaled sweep: verify the header, skip journaled points,
/// run the rest under supervision (appending to the same journal), and
/// print every result — journaled and fresh — in index order.
fn resume_journal(
    path: &str,
    mut journal: Journal,
    loaded: LoadedJournal,
    flags: &HashMap<String, String>,
) {
    let header = loaded.header;
    let points_json = serde_json::to_string(&header.points)
        .unwrap_or_else(|e| fatal(&format!("cannot serialize journal points: {e}")));
    if header.fingerprint != config_fingerprint(&points_json)
        || header.points_digest != points_digest(&header.points)
    {
        usage(&format!(
            "cannot resume {path}: the journal was written by a different build or its \
             point list was edited; re-run the sweep from scratch"
        ));
    }
    let n = header.points.len();
    let mut slots: Vec<Option<SweepResult>> = (0..n).map(|_| None).collect();
    for r in loaded.results {
        if r.index >= n || r.seed != derive_seed(header.master_seed, r.index as u64) {
            usage(&format!(
                "cannot resume {path}: journaled record for index {} does not match the \
                 journal's own point list",
                r.index
            ));
        }
        let i = r.index;
        slots[i] = Some(r);
    }
    let jobs: usize = get(flags, "jobs", default_jobs());
    if jobs == 0 {
        usage("--jobs must be at least 1");
    }
    let done = slots.iter().filter(|s| s.is_some()).count();
    if loaded.dropped_tail {
        eprintln!("resume: dropped a truncated tail record; that point will re-run");
    }
    eprintln!("resume: {path} — {done}/{n} point(s) already journaled");
    let skip: HashSet<usize> = (0..n).filter(|&i| slots[i].is_some()).collect();
    let policy = supervisor_policy(flags);
    let (fresh, report) = run_supervised_sweep(
        header.points.clone(),
        header.master_seed,
        jobs,
        &policy,
        &skip,
        Some(&mut journal),
        |_| {},
    );
    for r in fresh {
        let i = r.index;
        slots[i] = Some(r);
    }
    let results: Vec<SweepResult> = slots.into_iter().flatten().collect();
    for r in &results {
        println!("{}", result_line(r));
    }
    report_supervision(&report);
    if header.mode == "chaos" {
        chaos_gate(&results);
    }
}

/// Finish a snapshotted burst or campaign, continuing to checkpoint into
/// the same file while it runs.
fn resume_engine_snapshot(path: &str, flags: &HashMap<String, String>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read checkpoint {path}: {e}")));
    let snap = EngineSnapshot::from_json(&text).unwrap_or_else(|e| {
        usage(&format!(
            "{path} is neither a sweep journal nor an engine snapshot: {e}"
        ))
    });
    let every = snapshot_every(flags);
    eprintln!(
        "resume: {path} — continuing at epoch {}",
        snap.state.next_epoch
    );
    match resume_snapshot(snap, every, &mut |s| write_snapshot(path, s)) {
        Ok(ResumedRun::Burst {
            outcome, policy, ..
        }) => {
            print_burst_result(&outcome);
            if let (Some(sp), Some(json)) = (flags.get("save-policy"), policy) {
                std::fs::write(sp, json)
                    .unwrap_or_else(|e| fatal(&format!("cannot write {sp}: {e}")));
                println!("  policy            : saved to {sp}");
            }
        }
        Ok(ResumedRun::Campaign(out)) => print_campaign_result(&out),
        Err(e) => usage(&e.to_string()),
    }
}

fn trace(positional: &[String], flags: &HashMap<String, String>) {
    let kind = positional.first().map(String::as_str).unwrap_or_else(|| {
        usage("trace needs a kind: solar | wind");
    });
    let days = get(flags, "days", 1_u32);
    let seed = get(flags, "seed", 7_u64);
    let out_path = flags
        .get("out")
        .unwrap_or_else(|| usage("trace needs --out FILE.csv"));
    let mut rng = SimRng::seed_from_u64(seed);
    let trace = match kind {
        "solar" => SolarTrace::generate(days, &WeatherModel::default(), &mut rng),
        "wind" => WindModel::default().generate(days, &mut rng),
        other => usage(&format!("unknown trace kind: {other}")),
    };
    trace_io::write_csv(&trace, out_path).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        exit(1);
    });
    let mean: f64 = trace.samples().iter().sum::<f64>() / trace.len() as f64;
    println!(
        "wrote {} minute-samples of {kind} to {out_path} (capacity factor {:.0}%)",
        trace.len(),
        mean * 100.0
    );
}

fn tco(flags: &HashMap<String, String>) {
    let tco = TcoParams::paper();
    let hours = get(flags, "hours", 24.0_f64);
    println!("green-provision TCO (paper constants):");
    println!("  yearly capex   : {:.1} $/KW", tco.yearly_capex_per_kw());
    println!(
        "  revenue        : {:.1} $/KW at {hours} sprint-hours/year",
        tco.yearly_revenue_per_kw(hours)
    );
    println!("  POI            : {:+.1} $/KW/year", tco.poi(hours));
    println!(
        "  break-even     : {:.1} sprint-hours/year",
        tco.crossover_hours()
    );
}

/// `greensprint qtable validate|dump FILE` — offline forensics on a
/// serialized Q-table: either a raw policy JSON (`simulate --save-policy`)
/// or a quarantine sidecar written by the guardrail. `validate` exits 0
/// for a healthy table and 2 with the typed rejection otherwise; `dump`
/// prints what it can of any table, corrupt or not.
fn qtable(positional: &[String]) {
    let action = positional.first().map(String::as_str).unwrap_or_else(|| {
        usage("qtable needs an action: validate | dump");
    });
    let path = positional.get(1).map(String::as_str).unwrap_or_else(|| {
        usage("qtable needs a FILE (a saved policy or a quarantine sidecar)");
    });
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    // A quarantine sidecar wraps the policy with provenance; unwrap it.
    let (policy, sidecar) = match QuarantineRecord::from_json(&text) {
        Ok(rec) => (rec.policy.clone(), Some(rec)),
        Err(_) => (text, None),
    };
    if let Some(rec) = &sidecar {
        println!("quarantine sidecar:");
        println!("  epoch     : {}", rec.epoch);
        println!("  reason    : {}", rec.reason);
        println!("  checksum  : {}", rec.checksum);
        match rec.verify() {
            Ok(()) => println!("  integrity : checksum ok"),
            Err(e) => println!("  integrity : MISMATCH ({e})"),
        }
    }
    match action {
        "validate" => match QLearner::from_json(&policy) {
            Ok(l) => {
                print_table_stats(&l);
                println!("verdict: ok");
            }
            Err(e) => {
                eprintln!("error: invalid Q-table: {e}");
                exit(2);
            }
        },
        "dump" => match QLearner::from_json_unchecked(&policy) {
            Ok(l) => {
                print_table_stats(&l);
                match l.validate() {
                    Ok(()) => println!("verdict: ok"),
                    Err(e) => println!("verdict: CORRUPT ({e})"),
                }
            }
            Err(e) => {
                eprintln!("error: cannot parse Q-table: {e}");
                exit(2);
            }
        },
        other => usage(&format!("unknown qtable action: {other}")),
    }
}

fn print_table_stats(l: &QLearner) {
    let s = l.table_stats();
    println!("q-table:");
    println!(
        "  hyperparams : alpha {} gamma {} epsilon {}",
        l.learning_rate, l.discount, l.epsilon
    );
    println!("  cells       : {}", s.cells);
    println!("  non-finite  : {}", s.non_finite);
    println!(
        "  range       : [{:.6}, {:.6}] mean {:.6} max|q| {:.6}",
        s.min, s.max, s.mean, s.max_abs
    );
}

/// The machine-readable bench artifact (`BENCH_<sha>.json`), schema
/// `greensprint-bench/v1`. CI's bench-smoke job validates these fields.
#[derive(serde::Serialize)]
struct BenchArtifact {
    schema: &'static str,
    git_sha: String,
    quick: bool,
    reps: usize,
    peak_rss_kb: Option<u64>,
    epoch_loop: EpochLoopBench,
    des: DesBench,
    sweep: SweepBench,
    datacenter: DatacenterBench,
}

#[derive(serde::Serialize)]
struct EpochLoopBench {
    servers: usize,
    epochs: u64,
    table_build_s: f64,
    best_wall_s: f64,
    epochs_per_sec: f64,
}

#[derive(serde::Serialize)]
struct DesBench {
    epochs: usize,
    epoch_secs: f64,
    events: u64,
    best_wall_s: f64,
    events_per_sec: f64,
}

#[derive(serde::Serialize)]
struct SweepBench {
    points: usize,
    jobs: usize,
    best_wall_s: f64,
    points_per_sec: f64,
}

#[derive(serde::Serialize)]
struct DatacenterBench {
    racks: usize,
    servers_per_rack: usize,
    epochs: u64,
    jobs: usize,
    best_wall_s: f64,
    rack_epochs_per_sec: f64,
}

/// The current git short sha, for stamping bench artifacts. Falls back
/// to `"unknown"` outside a git checkout (e.g. an installed binary).
fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| String::from("unknown"))
}

/// Peak resident set size in kB, from `/proc/self/status` `VmHWM`.
/// Degrades to `None` — never an error, never a misleading `0` — when
/// the file is absent (non-Linux), the field is missing (old kernels,
/// hardened procfs), or the value is unparsable; the bench artifact
/// serializes that as JSON `null`.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm_kb(&status)
}

/// Extract `VmHWM` in kB from `/proc/self/status` text. A reported 0 is
/// treated as unavailable: a live process has touched at least one page,
/// so 0 only appears on broken or stubbed procfs.
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    (kb > 0).then_some(kb)
}

/// Time `body` `reps` times after one untimed warm-up call, returning the
/// best (minimum) wall time in seconds. Best-of-N because shared machines
/// are noisy: the minimum is the least-perturbed observation.
fn best_wall_s(reps: usize, mut body: impl FnMut()) -> f64 {
    body(); // warm-up: touch caches, fault in pages
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        body();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// `greensprint bench` — run the standardized hot-path workloads (engine
/// epoch loop, request-level DES, parallel sweep) and write
/// `BENCH_<git-short-sha>.json` so the performance trajectory is tracked
/// commit by commit. The one-time `ProfileTable` build is done *before*
/// any timed region and each workload gets an untimed warm-up rep, so the
/// numbers measure the steady-state loops, not cold caches; wall times are
/// best-of-`--reps` (minimum) because shared machines are noisy. Refuses
/// to overwrite an existing artifact for the same sha without `--force`
/// (exit 2).
fn bench(flags: &HashMap<String, String>) {
    let quick = flags.contains_key("quick");
    let force = flags.contains_key("force");
    let reps: usize = get(flags, "reps", if quick { 2 } else { 5 });
    if reps == 0 {
        usage("--reps must be at least 1");
    }
    let sha = git_short_sha();
    let out_path = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{sha}.json"));
    if Path::new(&out_path).exists() && !force {
        eprintln!("error: {out_path} already exists for sha {sha}; pass --force to overwrite it");
        exit(2);
    }

    // Workload 1 — engine epoch loop: a green fleet driven by the Pacing
    // strategy in Analytic mode (the learner-free configuration every
    // sweep cell and campaign epoch runs through). One engine run
    // simulates 2× the burst minutes of 1-minute epochs: the strategy run
    // plus its Normal baseline.
    let servers: usize = if quick { 200 } else { 1000 };
    let minutes: u64 = if quick { 60 } else { 240 };
    let epochs_per_run = 2 * minutes;
    let t0 = std::time::Instant::now();
    let _ = ProfileTable::cached(Application::SpecJbb);
    let table_build_s = t0.elapsed().as_secs_f64();
    let epoch_cfg = || EngineConfig {
        green: GreenConfig {
            name: "bench".into(),
            green_servers: servers,
            panels: servers as u32,
            battery_ah: 10.0,
        },
        strategy: Strategy::Pacing,
        availability: AvailabilityLevel::Medium,
        burst_duration: SimDuration::from_mins(minutes),
        measurement: MeasurementMode::Analytic,
        thermal: ThermalModel::Disabled,
        ..EngineConfig::default()
    };
    Engine::try_new(epoch_cfg()).unwrap_or_else(|e| fatal(&e.to_string()));
    let epoch_wall = best_wall_s(reps, || {
        let out = Engine::new(epoch_cfg()).run();
        assert!(out.speedup_vs_normal.is_finite());
    });
    let epochs_per_sec = epochs_per_run as f64 / epoch_wall;
    eprintln!(
        "bench: epoch_loop  {servers} servers x {epochs_per_run} epochs: \
         {epoch_wall:.3} s best-of-{reps} = {epochs_per_sec:.1} epochs/s \
         (profile table {table_build_s:.3} s, untimed)"
    );

    // Workload 2 — request-level DES: one Memcached server at its SLO
    // capacity under max sprint (the highest event rate the engine ever
    // asks of a single server). Events = arrivals + completions.
    let app = Application::Memcached.profile();
    let setting = ServerSetting::max_sprint();
    let offered = app.slo_capacity(setting);
    let des_epoch = SimDuration::from_secs(10);
    let des_epochs: usize = if quick { 6 } else { 60 };
    let mut des_events = 0u64;
    let des_wall = best_wall_s(reps, || {
        let mut sim = greensprint_repro::workload::des::ServerSim::new(SimRng::seed_from_u64(1));
        let mut events = 0.0;
        for _ in 0..des_epochs {
            let perf = sim.advance_epoch(&app, setting, offered, offered, des_epoch);
            events += (perf.offered_rps + perf.completed_rps) * des_epoch.as_secs_f64();
        }
        des_events = events.round() as u64;
    });
    let events_per_sec = des_events as f64 / des_wall;
    eprintln!(
        "bench: des         {des_events} events over {des_epochs} x {des_epoch} epochs: \
         {des_wall:.3} s best-of-{reps} = {events_per_sec:.0} events/s"
    );

    // Workload 3 — parallel sweep: a small strategy x app grid of analytic
    // bursts through the deterministic executor at the default job count.
    let strategies: &[Strategy] = if quick {
        &[Strategy::Greedy, Strategy::Pacing]
    } else {
        &[
            Strategy::Greedy,
            Strategy::Parallel,
            Strategy::Pacing,
            Strategy::Hybrid,
        ]
    };
    let jobs = default_jobs();
    let sweep_points = || {
        let mut points = Vec::new();
        for &strategy in strategies {
            for app in [Application::SpecJbb, Application::Memcached] {
                let cfg = EngineConfig {
                    app,
                    strategy,
                    green: GreenConfig::re_batt(),
                    availability: AvailabilityLevel::Medium,
                    burst_duration: SimDuration::from_mins(5),
                    measurement: MeasurementMode::Analytic,
                    ..EngineConfig::default()
                };
                points.push(SweepPoint::burst(format!("{app}/{strategy}"), cfg));
            }
        }
        points
    };
    let n_points = sweep_points().len();
    let sweep_wall = best_wall_s(reps, || {
        let results = run_sweep(sweep_points(), 7, jobs);
        assert_eq!(results.len(), n_points);
    });
    let points_per_sec = n_points as f64 / sweep_wall;
    eprintln!(
        "bench: sweep       {n_points} points on {jobs} jobs: \
         {sweep_wall:.3} s best-of-{reps} = {points_per_sec:.1} points/s"
    );

    // Workload 4 — datacenter broker: racks of 10 servers stepped in
    // lockstep through the partition-tolerant broker under a seeded site
    // fault plan (blackouts, partitions, lossy/laggy links), so the
    // number tracks the broker's routing + messaging machinery, not just
    // the per-rack epoch loop. Each run is the strategy pass plus the
    // per-rack baseline replays.
    let dc_racks: usize = if quick { 3 } else { 8 };
    let dc_minutes: u64 = if quick { 5 } else { 10 };
    let dc_cfg = || {
        let template = EngineConfig {
            strategy: Strategy::Pacing,
            availability: AvailabilityLevel::Medium,
            burst_duration: SimDuration::from_mins(dc_minutes),
            measurement: MeasurementMode::Analytic,
            thermal: ThermalModel::Disabled,
            ..EngineConfig::default()
        };
        let start = SimTime::from_secs_f64(template.burst_start_hour * 3_600.0);
        DatacenterConfig {
            racks: (0..dc_racks)
                .map(|i| RackSpec {
                    app: Application::ALL[i % Application::ALL.len()],
                    green: GreenConfig {
                        name: "bench".into(),
                        green_servers: 10,
                        panels: 10,
                        battery_ah: 10.0,
                    },
                    strategy: Strategy::Pacing,
                })
                .collect(),
            site_fault_plan: Some(FaultPlan::generate_site(
                42,
                start,
                template.burst_duration,
                dc_racks as u8,
            )),
            template,
        }
    };
    let dc_jobs = default_jobs();
    let dc_epochs = 2 * dc_minutes;
    let dc_wall = best_wall_s(reps, || {
        let out = try_run_datacenter(&dc_cfg(), dc_jobs)
            .unwrap_or_else(|e| fatal(&format!("bench datacenter: {e}")));
        assert!(out.mean_speedup.is_finite());
    });
    let rack_epochs_per_sec = (dc_racks as u64 * dc_epochs) as f64 / dc_wall;
    eprintln!(
        "bench: datacenter  {dc_racks} racks x 10 servers x {dc_epochs} epochs on {dc_jobs} jobs: \
         {dc_wall:.3} s best-of-{reps} = {rack_epochs_per_sec:.1} rack-epochs/s"
    );

    let artifact = BenchArtifact {
        schema: "greensprint-bench/v1",
        git_sha: sha,
        quick,
        reps,
        peak_rss_kb: peak_rss_kb(),
        epoch_loop: EpochLoopBench {
            servers,
            epochs: epochs_per_run,
            table_build_s,
            best_wall_s: epoch_wall,
            epochs_per_sec,
        },
        des: DesBench {
            epochs: des_epochs,
            epoch_secs: des_epoch.as_secs_f64(),
            events: des_events,
            best_wall_s: des_wall,
            events_per_sec,
        },
        sweep: SweepBench {
            points: n_points,
            jobs,
            best_wall_s: sweep_wall,
            points_per_sec,
        },
        datacenter: DatacenterBench {
            racks: dc_racks,
            servers_per_rack: 10,
            epochs: dc_epochs,
            jobs: dc_jobs,
            best_wall_s: dc_wall,
            rack_epochs_per_sec,
        },
    };
    let text = serde_json::to_string_pretty(&artifact)
        .unwrap_or_else(|e| fatal(&format!("cannot serialize bench artifact: {e}")));
    std::fs::write(&out_path, text + "\n")
        .unwrap_or_else(|e| fatal(&format!("cannot write {out_path}: {e}")));
    println!("wrote {out_path}");
}

/// `greensprint serve`: the epoch loop as a crash-tolerant rack-controller
/// daemon. Flag parsing and exit codes only — all behavior lives in
/// `greensprint::serve`.
fn serve_cmd(flags: &HashMap<String, String>) {
    let cfg = engine_cfg(flags);
    let sim_time = flags.contains_key("sim-time");
    let rate: f64 = get(flags, "rate", 1.0);
    if rate <= 0.0 || rate.is_nan() {
        usage("--rate must be positive");
    }

    let overrun = match flags.get("overrun").map(String::as_str).unwrap_or("skip") {
        "skip" => OverrunPolicy::Skip,
        "degrade" => OverrunPolicy::Degrade,
        other => usage(&format!("--overrun takes skip|degrade, got {other}")),
    };
    let n_epochs = cfg.burst_duration.div_duration(cfg.epoch).unwrap_or(0);
    let disturbances = flags
        .get("disturb-seed")
        .map(|_| DisturbancePlan::generate(get(flags, "disturb-seed", 0_u64), n_epochs));
    let options = ServeOptions {
        overrun,
        stale_after_epochs: get(flags, "stale-after", 3_u32),
        disturbances,
        metrics_buffer: get(flags, "metrics-buffer", 1024_usize),
        snapshot_every: get(flags, "snapshot-every", 10_u64),
        control_retries: get(flags, "retries", 2_u32),
        max_line_len: get(
            flags,
            "max-line-len",
            greensprint::net::DEFAULT_MAX_LINE_LEN,
        ),
        racks: get(flags, "racks", 1_u32),
        rack_restarts: get(flags, "rack-restarts", 2_u32),
        rack_snapshot_every: get(flags, "rack-snapshot-every", 0_u64),
    };
    if options.metrics_buffer == 0 {
        usage("--metrics-buffer must be at least 1");
    }
    if options.racks == 0 {
        usage("--racks must be at least 1");
    }

    let control = match flags.get("control").map(String::as_str).unwrap_or("none") {
        "none" => ControlBackend::None,
        "sim" => ControlBackend::Sim,
        "sysfs" => {
            let root = flags
                .get("sysfs-root")
                .unwrap_or_else(|| usage("--control sysfs needs --sysfs-root DIR"));
            ControlBackend::Sysfs(PathBuf::from(root))
        }
        other => usage(&format!("--control takes none|sim|sysfs, got {other}")),
    };

    // Network plane: any of the listener flags turns it on; the knob
    // flags are validated here (exit 2) before the daemon starts.
    let net_flags_used = ["listen", "metrics-listen", "admin-token"]
        .iter()
        .any(|f| flags.contains_key(*f));
    let net = net_flags_used.then(|| {
        let netcfg = NetConfig {
            listen: flags.get("listen").cloned(),
            metrics_listen: flags.get("metrics-listen").cloned(),
            admin_token: flags.get("admin-token").cloned(),
            max_conns: get(flags, "max-conns", greensprint::net::DEFAULT_MAX_CONNS),
            conn_timeout_ms: get(
                flags,
                "conn-timeout-ms",
                greensprint::net::DEFAULT_CONN_TIMEOUT_MS,
            ),
            max_line_len: options.max_line_len,
            ..NetConfig::default()
        };
        if let Err(e) = netcfg.validate() {
            usage(&e);
        }
        netcfg
    });
    if !net_flags_used && (flags.contains_key("max-conns") || flags.contains_key("conn-timeout-ms"))
    {
        usage("--max-conns/--conn-timeout-ms need a listener: pass --listen or --metrics-listen");
    }

    let args = ServeArgs {
        cfg,
        options,
        sim_time,
        rate,
        throttle_ms: get(flags, "throttle-ms", 0_u64),
        tick_budget_ms: flags
            .contains_key("tick-budget-ms")
            .then(|| get(flags, "tick-budget-ms", 0_u64)),
        metrics_path: flags.get("metrics").map(PathBuf::from),
        heartbeat_path: flags.get("heartbeat").map(PathBuf::from),
        snapshot_path: flags.get("snapshot").map(PathBuf::from),
        feed_path: flags.get("feed").map(PathBuf::from),
        control,
        resume_path: flags.get("resume").map(PathBuf::from),
        drain_after_epochs: flags
            .contains_key("drain-after")
            .then(|| get(flags, "drain-after", 0_u64)),
        net,
    };

    let summary = serve(args).unwrap_or_else(|e| match e {
        ServeError::Config(_) => usage(&e.to_string()),
        _ => fatal(&e.to_string()),
    });
    let text = serde_json::to_string_pretty(&summary)
        .unwrap_or_else(|e| fatal(&format!("cannot serialize serve summary: {e}")));
    println!("{text}");
    if summary.racks >= 2 {
        eprint!("{}", greensprint::report::rack_fleet_summary(&summary));
    }
    if let Some(n) = &summary.net {
        eprint!("{}", greensprint::report::net_plane_summary(n));
    }
    // A completed run that lost the Normal floor or tripped the auditor is
    // an operational failure, same contract as `chaos`.
    if summary.audit_violations > 0 || summary.floor_held == Some(false) {
        exit(1);
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "greensprint — renewable-energy-driven computational sprinting

usage:
  greensprint simulate [--app jbb|websearch|memcached] [--config re-batt|re-only|re-sbatt|sre-sbatt]
                       [--strategy normal|greedy|parallel|pacing|hybrid] [--availability min|med|max]
                       [--minutes N] [--intensity K] [--seed N] [--analytic] [--hysteresis F]
                       [--trace FILE.csv] [--warm-policy FILE] [--save-policy FILE]
                       [--scenario FILE.json] [--checkpoint FILE] [--snapshot-every N]
  greensprint campaign [--days N] [--spikes N] [--app A] [--strategy S] [--seed N] [--analytic]
                       [--checkpoint FILE] [--snapshot-every N]
  greensprint sweep    [--apps A,B] [--strategies S,..] [--availabilities L,..] [--minutes M,..]
                       [--configs C,..] [--days N] [--intensity K] [--seed N] [--jobs N] [--analytic]
                       [--checkpoint FILE | --resume FILE] [--retries N] [--task-timeout-epochs N]
                       grid sweep on the deterministic parallel executor; one JSON line
                       per point (completion order), identical results for any --jobs
  greensprint chaos    [--plan FILE.json] [--fault-seed N] [--runs R] [--jobs N] [--seed N]
                       [--fleet] [--crashes N] [--flaps N] [--stragglers N]
                       [--app A] [--strategy S] [--availability L] [--minutes N] [--analytic]
                       [--checkpoint FILE | --resume FILE] [--retries N] [--task-timeout-epochs N]
                       fault-injection runs (sensor dropout, inverter derate, stuck servers,
                       ...); one JSON line per run; exits 1 if any run loses the Normal
                       floor, overdraws the grid, or trips the invariant auditor.
                       --fleet switches the generator to server-level fault domains
                       (crashes, power flaps, stragglers) with --crashes/--flaps/
                       --stragglers picking the per-plan mix (2/1/1); dead servers shed
                       their load to the survivors and rejoin after a clean streak
  greensprint datacenter [--racks N] [--apps A,B] [--configs C,..] [--strategies S,..]
                       [--availability min|med|max] [--minutes N] [--intensity K] [--seed N]
                       [--analytic] [--jobs N] [--site-plan FILE.json | --site-seed N]
                       [--checkpoint FILE | --resume FILE] [--snapshot-every N]
                       run --racks racks (cycling the app/config/strategy axes) under
                       the partition-tolerant broker: load routes toward racks with
                       renewable surplus, partitioned racks degrade to local autonomy
                       and rejoin through probation, blacked-out racks shed their load
                       to the survivors. --site-seed generates a seeded site fault
                       plan (blackouts, partitions, lossy/laggy links); --site-plan
                       loads one from JSON. One JSON line per rack, byte-identical
                       for any --jobs; --checkpoint snapshots the whole fleet
                       (Analytic mode) and --resume finishes it byte-identically.
                       Exits 1 if any rack loses the Normal floor, overdraws the
                       grid, or the rack/site invariant audits record a violation
  greensprint serve    [--sim-time] [--rate F] [--throttle-ms N] [--tick-budget-ms N]
                       [--overrun skip|degrade] [--stale-after N] [--disturb-seed N]
                       [--metrics FILE] [--heartbeat FILE] [--snapshot FILE] [--snapshot-every N]
                       [--feed FILE|-] [--control none|sim|sysfs] [--sysfs-root DIR] [--retries N]
                       [--resume FILE] [--drain-after N] [--metrics-buffer N]
                       [--racks N] [--rack-restarts N] [--rack-snapshot-every N]
                       [--listen ADDR] [--metrics-listen ADDR] [--admin-token SECRET]
                       [--max-conns N] [--conn-timeout-ms N] [engine flags]
                       run the controller as a crash-tolerant daemon: trace replay at
                       --rate sim-seconds per wall-second (or --sim-time at full speed),
                       an optional line-delimited supply feed whose silence routes into
                       PSS safe mode after --stale-after epochs, per-tick deadline
                       budgets with an explicit overrun policy (a tick wedged past 4x
                       its budget also trips the watchdog: counted, guardrail-logged,
                       one ladder demotion), bounded deterministic actuation retries, a
                       drop-oldest metrics buffer, a heartbeat file, SIGTERM drain, and
                       --resume restart from the last snapshot with a byte-identical
                       --sim-time metrics stream. --racks N drives N racks as
                       supervised worker threads: a crashed or admin-killed worker
                       restarts from its last rack snapshot within --rack-restarts
                       attempts (deterministic replay — the aggregate stream stays
                       byte-identical), then is quarantined with its load rerouted to
                       the survivors; rack snapshots ride --rack-snapshot-every (0 =
                       follow --snapshot-every) and the whole fleet checkpoints into
                       one v2 --snapshot for mid-outage --resume. --listen opens the
                       TCP network plane (JSON-lines telemetry ingest in the --feed
                       formats, SUB [?from_epoch=N][&rack=R] metrics fan-out with
                       gap-free catch-up replay, STATUS/DRAIN/KILL-RACK/RESTART-RACK
                       admin gated by --admin-token), bounded by --max-conns (>= 1)
                       and --conn-timeout-ms (> 0); network activity never perturbs
                       the --sim-time metrics stream
  greensprint resume   FILE [--jobs N] [--retries N] [--task-timeout-epochs N] [--snapshot-every N]
                       continue an interrupted run from its checkpoint: a sweep/chaos
                       journal re-runs only the missing points and prints the full result
                       set in index order; an engine snapshot (simulate/campaign
                       --checkpoint, Analytic mode only) finishes from the last epoch
  greensprint qtable   (validate|dump) FILE
                       offline Q-table forensics: FILE is a saved policy or a guardrail
                       quarantine sidecar; validate exits 2 on a corrupt table, dump
                       prints stats for any table
  greensprint trace (solar|wind) [--days N] [--seed N] --out FILE.csv
  greensprint tco [--hours H]
  greensprint bench    [--quick] [--force] [--reps N] [--out FILE.json]
                       standardized hot-path benchmarks (engine epoch loop, request
                       DES, parallel sweep); writes BENCH_<git-short-sha>.json with
                       wall times, epochs/events/points per second, and peak RSS.
                       Best-of---reps timing after untimed warm-up; refuses to
                       overwrite the same sha's artifact without --force (exit 2)

guardrail flags (simulate/campaign/sweep/chaos):
  --guardrail on|off       shadow a certified fallback strategy each epoch; on
                           deterministic detector trips (SLO streak, SoC-vs-plan
                           divergence, reward regression vs shadow, Q-table corruption)
                           demote down the failover ladder Hybrid > Parallel > Pacing >
                           Normal, quarantine the offending Q-table, and re-promote
                           after a clean probation window (off)
  --fallback STRATEGY      certified fallback to shadow and land on (pacing)
  --quarantine-dir DIR     where quarantined Q-table sidecars are written

robustness flags:
  --checkpoint FILE        sweep/chaos: fsync'd JSON-lines journal of completed points
                           simulate/campaign: engine snapshot, rewritten atomically
  --resume FILE            continue a journal in place (grid flags are ignored)
  --retries N              re-attempts for a panicking task before recording it failed (2)
  --task-timeout-epochs N  deterministic per-task epoch budget; over-budget tasks are
                           failed up front without running (0 = unlimited)
  --snapshot-every N       epochs between engine snapshots (10)"
    );
    exit(2);
}

#[cfg(test)]
mod tests {
    use super::parse_vm_hwm_kb;

    #[test]
    fn vm_hwm_parses_normal_status() {
        let status =
            "Name:\tgreensprint\nVmPeak:\t  201844 kB\nVmHWM:\t   73216 kB\nVmRSS:\t   73216 kB\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(73216));
    }

    #[test]
    fn vm_hwm_missing_field_is_none() {
        let status = "Name:\tgreensprint\nVmPeak:\t  201844 kB\nVmRSS:\t   73216 kB\n";
        assert_eq!(parse_vm_hwm_kb(status), None);
    }

    #[test]
    fn vm_hwm_empty_or_garbage_is_none() {
        assert_eq!(parse_vm_hwm_kb(""), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM:\n"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM:\tpotato kB\n"), None);
    }

    #[test]
    fn vm_hwm_zero_is_unavailable_not_zero() {
        assert_eq!(parse_vm_hwm_kb("VmHWM:\t       0 kB\n"), None);
    }
}
