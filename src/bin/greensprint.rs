//! `greensprint` — the operator CLI.
//!
//! ```text
//! greensprint simulate [--app jbb|websearch|memcached] [--config re-batt|re-only|re-sbatt|sre-sbatt]
//!                      [--strategy greedy|parallel|pacing|hybrid|normal] [--availability min|med|max]
//!                      [--minutes N] [--intensity K] [--seed N] [--analytic]
//!                      [--hysteresis F] [--trace FILE.csv]
//!                      [--warm-policy FILE] [--save-policy FILE] [--scenario FILE.json]
//! greensprint campaign [--days N] [--spikes N] [--app ...] [--strategy ...] [--seed N]
//! greensprint sweep [--apps A,B] [--strategies S,..] [--availabilities L,..] [--minutes M,..]
//!                   [--configs C,..] [--days N] [--intensity K] [--seed N] [--jobs N] [--analytic]
//! greensprint chaos [--plan FILE.json] [--fault-seed N] [--runs R] [--jobs N]
//!                   [--app ...] [--strategy ...] [--availability ...] [--minutes N] [--analytic]
//! greensprint trace (solar|wind) [--days N] [--seed N] --out FILE.csv
//! greensprint tco [--hours H]
//! ```

use greensprint_repro::power::trace_io;
use greensprint_repro::power::wind::WindModel;
use greensprint_repro::prelude::*;
use std::collections::HashMap;
use std::process::exit;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage("missing subcommand");
    }
    let cmd = args.remove(0);
    let (flags, positional) = parse_flags(&args);
    match cmd.as_str() {
        "simulate" => simulate(&flags),
        "campaign" => campaign(&flags),
        "sweep" => sweep(&flags),
        "chaos" => chaos(&flags),
        "trace" => trace(&positional, &flags),
        "tco" => tco(&flags),
        "help" | "--help" | "-h" => usage(""),
        other => usage(&format!("unknown subcommand: {other}")),
    }
}

/// Split `--key value` pairs (and bare `--switch`es) from positional args.
fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let next_is_value = args.get(i + 1).is_some_and(|v| !v.starts_with("--"));
            if next_is_value {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), String::from("true"));
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    (flags, positional)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: --{key} cannot parse {v:?}");
            exit(2);
        }),
    }
}

fn parse_app(s: &str) -> Application {
    match s {
        "jbb" | "specjbb" => Application::SpecJbb,
        "websearch" | "ws" | "web-search" => Application::WebSearch,
        "memcached" | "mc" => Application::Memcached,
        other => usage(&format!("unknown --app {other}")),
    }
}

fn app_of(flags: &HashMap<String, String>) -> Application {
    parse_app(flags.get("app").map(String::as_str).unwrap_or("jbb"))
}

fn parse_green(s: &str) -> GreenConfig {
    match s {
        "re-batt" => GreenConfig::re_batt(),
        "re-only" => GreenConfig::re_only(),
        "re-sbatt" => GreenConfig::re_sbatt(),
        "sre-sbatt" => GreenConfig::sre_sbatt(),
        other => usage(&format!("unknown --config {other}")),
    }
}

fn green_of(flags: &HashMap<String, String>) -> GreenConfig {
    parse_green(flags.get("config").map(String::as_str).unwrap_or("re-batt"))
}

fn parse_strategy(s: &str) -> Strategy {
    match s {
        "normal" => Strategy::Normal,
        "greedy" => Strategy::Greedy,
        "parallel" => Strategy::Parallel,
        "pacing" => Strategy::Pacing,
        "hybrid" => Strategy::Hybrid,
        other => usage(&format!("unknown --strategy {other}")),
    }
}

fn strategy_of(flags: &HashMap<String, String>) -> Strategy {
    parse_strategy(
        flags
            .get("strategy")
            .map(String::as_str)
            .unwrap_or("hybrid"),
    )
}

fn parse_availability(s: &str) -> AvailabilityLevel {
    match s {
        "min" | "minimum" => AvailabilityLevel::Minimum,
        "med" | "medium" => AvailabilityLevel::Medium,
        "max" | "maximum" => AvailabilityLevel::Maximum,
        other => usage(&format!("unknown --availability {other}")),
    }
}

fn availability_of(flags: &HashMap<String, String>) -> AvailabilityLevel {
    parse_availability(
        flags
            .get("availability")
            .map(String::as_str)
            .unwrap_or("med"),
    )
}

/// A comma-separated grid axis: `--apps jbb,memcached`.
fn axis<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> Vec<&'a str> {
    flags
        .get(key)
        .map(String::as_str)
        .unwrap_or(default)
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn engine_cfg(flags: &HashMap<String, String>) -> EngineConfig {
    // A scenario file provides the base configuration; every other flag
    // then overrides it. Missing fields take the library defaults
    // (EngineConfig deserializes with per-field defaults).
    if let Some(path) = flags.get("scenario") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read scenario {path}: {e}")));
        let mut cfg: EngineConfig = serde_json::from_str(&text)
            .unwrap_or_else(|e| usage(&format!("invalid scenario {path}: {e}")));
        // Flag overrides on top of the file.
        if flags.contains_key("app") {
            cfg.app = app_of(flags);
        }
        if flags.contains_key("config") {
            cfg.green = green_of(flags);
        }
        if flags.contains_key("strategy") {
            cfg.strategy = strategy_of(flags);
        }
        if flags.contains_key("availability") {
            cfg.availability = availability_of(flags);
        }
        if flags.contains_key("minutes") {
            cfg.burst_duration = SimDuration::from_mins(get(flags, "minutes", 10_u64));
        }
        if flags.contains_key("seed") {
            cfg.seed = get(flags, "seed", 7_u64);
        }
        if flags.contains_key("analytic") {
            cfg.measurement = MeasurementMode::Analytic;
        }
        return cfg;
    }
    let trace_override = flags.get("trace").map(|path| {
        trace_io::read_csv(path)
            .unwrap_or_else(|e| usage(&format!("cannot read trace {path}: {e}")))
    });
    let warm_policy_json = flags.get("warm-policy").map(|path| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read policy {path}: {e}")))
    });
    EngineConfig {
        app: app_of(flags),
        green: green_of(flags),
        strategy: strategy_of(flags),
        availability: availability_of(flags),
        burst_duration: SimDuration::from_mins(get(flags, "minutes", 10_u64)),
        burst_intensity_cores: get(flags, "intensity", 12_u8),
        measurement: if flags.contains_key("analytic") {
            MeasurementMode::Analytic
        } else {
            MeasurementMode::Des
        },
        switch_hysteresis: get(flags, "hysteresis", 0.0_f64),
        trace_override,
        warm_policy_json,
        seed: get(flags, "seed", 7_u64),
        ..EngineConfig::default()
    }
}

fn simulate(flags: &HashMap<String, String>) {
    let cfg = engine_cfg(flags);
    println!(
        "simulating: {} on {} ({} servers, {:.1} Ah), {} strategy, {} availability, {} burst",
        cfg.app,
        cfg.green.name,
        cfg.green.green_servers,
        cfg.green.battery_ah,
        cfg.strategy,
        cfg.availability,
        cfg.burst_duration,
    );
    let save_policy = flags.get("save-policy").cloned();
    let engine = Engine::try_new(cfg).unwrap_or_else(|e| usage(&e.to_string()));
    let (out, _, policy) = engine.run_full();
    println!("\nresult:");
    println!("  speedup vs Normal : {:.2}x", out.speedup_vs_normal);
    println!(
        "  goodput           : {:.1} req/s/server (Normal {:.1})",
        out.mean_goodput_rps, out.normal_baseline_rps
    );
    println!("  SLO attainment    : {:.1}%", out.slo_attainment * 100.0);
    println!(
        "  energy            : {:.1} Wh renewable + {:.1} Wh battery ({:.1} Wh curtailed)",
        out.re_used_wh, out.battery_used_wh, out.curtailed_wh
    );
    println!(
        "  battery           : {:.3} equivalent cycles; {:.1} Wh grid recharge afterwards",
        out.battery_cycles, out.grid_recharge_wh
    );
    println!(
        "  thermals          : peak {:.1} degC, {} throttled epochs",
        out.peak_temp_c, out.thermal_throttle_epochs
    );
    println!(
        "  knob churn        : {} setting transitions",
        out.setting_transitions
    );
    if let (Some(path), Some(json)) = (save_policy, policy) {
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            exit(1);
        });
        println!("  policy            : saved to {path}");
    }
}

fn campaign(flags: &HashMap<String, String>) {
    let cfg = CampaignConfig {
        engine: engine_cfg(flags),
        days: get(flags, "days", 3_u32),
        spikes_per_day: get(flags, "spikes", 4_u32),
        peak_intensity_cores: get(flags, "intensity", 12_u8),
    };
    let out = try_run_campaign(&cfg).unwrap_or_else(|e| usage(&e.to_string()));
    let tco = TcoParams::paper();
    println!("campaign over {} day(s):", out.days);
    println!(
        "  sprint hours        : {:.1} ({:.1} server-hours)",
        out.sprint_hours, out.sprint_server_hours
    );
    println!(
        "  extrapolated        : {:.0} h/year (break-even {:.1})",
        out.sprint_hours_per_year,
        tco.crossover_hours()
    );
    println!("  goodput vs Normal   : {:.2}x", out.goodput_vs_normal);
    println!(
        "  POI                 : {:+.0} $/KW/year",
        tco.poi(out.sprint_hours_per_year)
    );
}

/// `greensprint sweep` — run a grid of bursts (or campaigns, with
/// `--days`) through the deterministic parallel executor, one JSON line
/// per completed point, in completion order. Results are bit-identical
/// for any `--jobs` value.
fn sweep(flags: &HashMap<String, String>) {
    let jobs: usize = get(flags, "jobs", default_jobs());
    if jobs == 0 {
        usage("--jobs must be at least 1");
    }
    let seed: u64 = get(flags, "seed", 7);
    let intensity: u8 = get(flags, "intensity", 12);
    let measurement = if flags.contains_key("analytic") {
        MeasurementMode::Analytic
    } else {
        MeasurementMode::Des
    };
    let days: u32 = get(flags, "days", 0);

    let apps = axis(flags, "apps", "jbb");
    let strategies = axis(flags, "strategies", "greedy,parallel,pacing,hybrid");
    let availabilities = axis(flags, "availabilities", "min,med,max");
    let minutes = axis(flags, "minutes", "10,15,30,60");
    let greens = axis(flags, "configs", "re-batt");

    let mut points = Vec::new();
    for app in &apps {
        for green in &greens {
            for strat in &strategies {
                for avail in &availabilities {
                    let base = EngineConfig {
                        app: parse_app(app),
                        green: parse_green(green),
                        strategy: parse_strategy(strat),
                        availability: parse_availability(avail),
                        burst_intensity_cores: intensity,
                        measurement,
                        ..EngineConfig::default()
                    };
                    if days > 0 {
                        let label = format!("{app}/{green}/{strat}/{avail}/{days}day");
                        points.push(SweepPoint::campaign(
                            label,
                            CampaignConfig {
                                engine: base,
                                days,
                                spikes_per_day: get(flags, "spikes", 4),
                                peak_intensity_cores: intensity,
                            },
                        ));
                    } else {
                        for mins in &minutes {
                            let m: u64 = mins.parse().unwrap_or_else(|_| {
                                usage(&format!("--minutes cannot parse {mins:?}"))
                            });
                            let label = format!("{app}/{green}/{strat}/{avail}/{m}min");
                            let cfg = EngineConfig {
                                burst_duration: SimDuration::from_mins(m),
                                ..base.clone()
                            };
                            points.push(SweepPoint::burst(label, cfg));
                        }
                    }
                }
            }
        }
    }
    // Reject bad configurations up front with a usage message instead of
    // letting a worker thread panic mid-sweep.
    for p in &points {
        let check = match &p.task {
            SweepTask::Burst(cfg) => cfg.validate(),
            SweepTask::Campaign(cfg) => cfg.validate(),
        };
        if let Err(e) = check {
            usage(&format!("invalid sweep point {}: {e}", p.label));
        }
    }
    run_sweep_streaming(points, seed, jobs, |r| {
        println!(
            "{}",
            serde_json::to_string(r).expect("sweep results serialize")
        );
    });
}

/// `greensprint chaos` — fault-injection runs. Each run applies a
/// [`FaultPlan`] (loaded from `--plan FILE.json`, or generated from
/// `--fault-seed`) to a burst and fans the batch through the same
/// deterministic executor as `sweep`: one JSON line per run, bit-identical
/// for any `--jobs`. Exits 1 if any run loses the Normal goodput floor or
/// overdraws the grid cap — the invariants safe mode exists to keep.
fn chaos(flags: &HashMap<String, String>) {
    let jobs: usize = get(flags, "jobs", default_jobs());
    if jobs == 0 {
        usage("--jobs must be at least 1");
    }
    let runs: usize = get(flags, "runs", 4);
    if runs == 0 {
        usage("--runs must be at least 1");
    }
    let fault_seed: u64 = get(flags, "fault-seed", 42);
    let base = engine_cfg(flags);
    let file_plan: Option<FaultPlan> = flags.get("plan").map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read fault plan {path}: {e}")));
        FaultPlan::from_json(&text)
            .unwrap_or_else(|e| usage(&format!("invalid fault plan {path}: {e}")))
    });
    let start = SimTime::from_secs_f64(base.burst_start_hour * 3_600.0);

    let mut points = Vec::new();
    for r in 0..runs {
        // A file plan repeats across runs (the engine seed still varies
        // per run via the executor); otherwise each run gets its own
        // independently seeded plan.
        let plan = file_plan.clone().unwrap_or_else(|| {
            FaultPlan::generate(
                derive_seed(fault_seed, r as u64),
                start,
                base.burst_duration,
                base.green.green_servers.min(u8::MAX as usize) as u8,
            )
        });
        let label = format!(
            "chaos/{}/{}/{}/plan{r}",
            base.app, base.strategy, base.availability
        );
        points.push(SweepPoint::burst(
            label,
            EngineConfig {
                fault_plan: Some(plan),
                ..base.clone()
            },
        ));
    }
    for p in &points {
        if let SweepTask::Burst(cfg) = &p.task {
            if let Err(e) = cfg.validate() {
                usage(&format!("invalid chaos point {}: {e}", p.label));
            }
        }
    }

    let mut violations = 0usize;
    run_sweep_streaming(points, get(flags, "seed", 7), jobs, |r| {
        println!(
            "{}",
            serde_json::to_string(r).expect("chaos results serialize")
        );
        if let SweepOutcome::Burst(b) = &r.outcome {
            if !b.floor_held || b.grid_overload_wh != 0.0 {
                violations += 1;
            }
        }
    });
    if violations > 0 {
        eprintln!("error: {violations} chaos run(s) violated the safety floor");
        exit(1);
    }
    eprintln!("chaos: {runs} run(s), all held the Normal floor with zero grid overload");
}

fn trace(positional: &[String], flags: &HashMap<String, String>) {
    let kind = positional.first().map(String::as_str).unwrap_or_else(|| {
        usage("trace needs a kind: solar | wind");
    });
    let days = get(flags, "days", 1_u32);
    let seed = get(flags, "seed", 7_u64);
    let out_path = flags
        .get("out")
        .unwrap_or_else(|| usage("trace needs --out FILE.csv"));
    let mut rng = SimRng::seed_from_u64(seed);
    let trace = match kind {
        "solar" => SolarTrace::generate(days, &WeatherModel::default(), &mut rng),
        "wind" => WindModel::default().generate(days, &mut rng),
        other => usage(&format!("unknown trace kind: {other}")),
    };
    trace_io::write_csv(&trace, out_path).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        exit(1);
    });
    let mean: f64 = trace.samples().iter().sum::<f64>() / trace.len() as f64;
    println!(
        "wrote {} minute-samples of {kind} to {out_path} (capacity factor {:.0}%)",
        trace.len(),
        mean * 100.0
    );
}

fn tco(flags: &HashMap<String, String>) {
    let tco = TcoParams::paper();
    let hours = get(flags, "hours", 24.0_f64);
    println!("green-provision TCO (paper constants):");
    println!("  yearly capex   : {:.1} $/KW", tco.yearly_capex_per_kw());
    println!(
        "  revenue        : {:.1} $/KW at {hours} sprint-hours/year",
        tco.yearly_revenue_per_kw(hours)
    );
    println!("  POI            : {:+.1} $/KW/year", tco.poi(hours));
    println!(
        "  break-even     : {:.1} sprint-hours/year",
        tco.crossover_hours()
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "greensprint — renewable-energy-driven computational sprinting

usage:
  greensprint simulate [--app jbb|websearch|memcached] [--config re-batt|re-only|re-sbatt|sre-sbatt]
                       [--strategy normal|greedy|parallel|pacing|hybrid] [--availability min|med|max]
                       [--minutes N] [--intensity K] [--seed N] [--analytic] [--hysteresis F]
                       [--trace FILE.csv] [--warm-policy FILE] [--save-policy FILE]
                       [--scenario FILE.json]
  greensprint campaign [--days N] [--spikes N] [--app A] [--strategy S] [--seed N] [--analytic]
  greensprint sweep    [--apps A,B] [--strategies S,..] [--availabilities L,..] [--minutes M,..]
                       [--configs C,..] [--days N] [--intensity K] [--seed N] [--jobs N] [--analytic]
                       grid sweep on the deterministic parallel executor; one JSON line
                       per point (completion order), identical results for any --jobs
  greensprint chaos    [--plan FILE.json] [--fault-seed N] [--runs R] [--jobs N] [--seed N]
                       [--app A] [--strategy S] [--availability L] [--minutes N] [--analytic]
                       fault-injection runs (sensor dropout, inverter derate, stuck servers,
                       ...); one JSON line per run; exits 1 if any run loses the Normal
                       floor or overdraws the grid
  greensprint trace (solar|wind) [--days N] [--seed N] --out FILE.csv
  greensprint tco [--hours H]"
    );
    exit(2);
}
