//! # greensprint-repro — GreenSprint (IPDPS 2018), reproduced in Rust
//!
//! A full reimplementation of *GreenSprint: Effective Computational
//! Sprinting in Green Data Centers* and every substrate it depends on:
//!
//! * [`sim`] — deterministic simulation kernel (clock, events, RNG, stats);
//! * [`power`] — solar generation, VRLA batteries with Peukert's law,
//!   power-source selection, PDU/breaker hierarchy;
//! * [`cluster`] — the 10-server prototype: DVFS states, core scaling,
//!   calibrated power models, cpufreq/sysfs control plane;
//! * [`workload`] — SPECjbb / Web-Search / Memcached as SLO-constrained
//!   queueing stations with a request-level DES;
//! * [`core`] — the GreenSprint controller: Monitor, Predictor, PSS, the
//!   four PMK strategies (Greedy/Parallel/Pacing/Hybrid Q-learning), and
//!   the scheduling-epoch engine;
//! * [`tco`] — the profit-over-investment model.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results. The `experiments`
//! binary regenerates every table and figure of the paper's evaluation.
//!
//! ## Example
//!
//! ```
//! use greensprint_repro::prelude::*;
//!
//! let cfg = EngineConfig {
//!     app: Application::SpecJbb,
//!     green: GreenConfig::re_batt(),
//!     strategy: Strategy::Hybrid,
//!     availability: AvailabilityLevel::Maximum,
//!     burst_duration: SimDuration::from_mins(5),
//!     measurement: MeasurementMode::Analytic,
//!     ..EngineConfig::default()
//! };
//! let outcome = Engine::new(cfg).run();
//! assert!(outcome.speedup_vs_normal > 4.0);
//! ```

pub use greensprint as core;
pub use gs_cluster as cluster;
pub use gs_power as power;
pub use gs_sim as sim;
pub use gs_tco as tco;
pub use gs_workload as workload;

/// The commonly-used types in one import.
pub mod prelude {
    pub use greensprint::audit::{EpochFlows, InvariantAuditor, SiteFlows};
    pub use greensprint::broker::{
        datacenter_fingerprint, resume_datacenter_snapshot, run_datacenter_with_snapshots,
        try_run_datacenter, BrokerState, DatacenterSnapshot, RackRouteStats,
    };
    pub use greensprint::campaign::{
        run_campaign, try_run_campaign, try_run_campaign_with_snapshots, CampaignConfig,
        CampaignOutcome,
    };
    pub use greensprint::checkpoint::{
        config_fingerprint, points_digest, EngineSnapshot, Journal, JournalError, JournalHeader,
        LoadedJournal,
    };
    pub use greensprint::config::{AvailabilityLevel, GreenConfig};
    pub use greensprint::datacenter::{
        run_datacenter, DatacenterConfig, DatacenterOutcome, RackSpec,
    };
    pub use greensprint::engine::{resume_snapshot, ResumedRun};
    pub use greensprint::engine::{
        BurstOutcome, Engine, EngineConfig, EngineError, MeasurementMode, ThermalModel,
        REJOIN_EPOCHS,
    };
    pub use greensprint::faults::{ActiveFaults, FaultEvent, FaultKind, FaultPlan, FleetMix};
    pub use greensprint::guardrail::{
        Guardrail, GuardrailConfig, GuardrailState, QuarantineRecord,
    };
    pub use greensprint::net::{
        admin_request, run_fault_plan, subscribe_collect, NetAddrs, NetConfig, NetFaultOp,
        NetFaultPlan, NetHarnessReport, NetPlane, NetSummary, RackStat,
    };
    pub use greensprint::pmk::Strategy;
    pub use greensprint::profiler::ProfileTable;
    pub use greensprint::qlearning::{PolicyError, QLearner, TableStats};
    pub use greensprint::serve::{
        serve, ControlBackend, DirectiveRow, DisturbancePlan, OverrunPolicy, ServeArgs,
        ServeDcSideState, ServeError, ServeOptions, ServeSnapshot, ServeSummary, SERVE_SCHEMA_V2,
    };
    pub use greensprint::supervisor::{
        epoch_budget, run_supervised_sweep, RackHealth, RackSupervisor, SupervisorPolicy,
        SweepReport,
    };
    pub use greensprint::sweep::{
        default_jobs, derive_seed, run_sweep, run_sweep_streaming, SweepOutcome, SweepPoint,
        SweepResult, SweepTask,
    };
    pub use gs_cluster::ServerSetting;
    pub use gs_power::battery::{Battery, BatterySpec};
    pub use gs_power::solar::{PvArray, SolarTrace, WeatherModel};
    pub use gs_sim::{SimDuration, SimRng, SimTime};
    pub use gs_tco::TcoParams;
    pub use gs_workload::apps::Application;
}
