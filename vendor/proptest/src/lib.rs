//! Minimal property-testing harness with the `proptest` surface the
//! workspace uses (offline build). Cases are drawn from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce across
//! runs. There is no shrinking: a failing case reports its index and
//! message and the fixed seeding makes it reproducible under a debugger.

use std::fmt;

/// How many random cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Failure raised by `prop_assert!` (or an early `return Err(..)`).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

pub mod test_runner {
    /// Deterministic RNG for drawing test cases (splitmix64 core).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test's name so every test gets a stable,
        /// distinct stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for drawing values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    (lo as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
                }
            }
        )*};
    }
    impl_signed_range!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Sampling a closed float interval: rounding at the top end
            // makes the inclusive bound reachable.
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

    /// `prop::collection::vec` output.
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `prop::bool::ANY` output.
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Namespace mirroring `proptest::prop::*` call sites.
pub mod prop {
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }
    }

    pub mod bool {
        pub const ANY: crate::strategy::BoolStrategy = crate::strategy::BoolStrategy;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    let __result = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __result {
                        panic!("property `{}` failed on case {}: {}", stringify!($name), __case, __e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3_u64..10, y in -5_i64..=5, f in 0.25_f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(0_u64..100, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("abc");
        let mut b = TestRng::deterministic("abc");
        let mut c = TestRng::deterministic("xyz");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
