//! In-repo, JSON-only replacement for the `serde` facade.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the small slice of serde the workspace actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on plain structs (named and
//!   tuple/newtype), and on enums with unit, tuple, and struct variants
//!   (externally tagged, like real serde);
//! * the container attribute `#[serde(default)]` (missing fields fall back
//!   to the container's `Default`);
//! * serialization through an owned [`Value`] tree that `serde_json`
//!   renders and parses.
//!
//! The data model is deliberately tiny: everything serializes by building
//! a [`Value`] and deserializes by reading one. Field order in generated
//! objects is declaration order, so output is deterministic — a property
//! the sweep executor's byte-identity guarantee relies on.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization/serialization error: a message string, like
/// `serde_json::Error` in spirit.
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error { msg: m.to_string() }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number that remembers whether it was an exact integer, so `u64`
/// seeds and similar round-trip losslessly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number {
    f: f64,
    u: Option<u64>,
    i: Option<i64>,
}

impl Number {
    /// From a float.
    pub fn from_f64(f: f64) -> Self {
        Number {
            f,
            u: None,
            i: None,
        }
    }

    /// From an unsigned integer.
    pub fn from_u64(u: u64) -> Self {
        Number {
            f: u as f64,
            u: Some(u),
            i: i64::try_from(u).ok(),
        }
    }

    /// From a signed integer.
    pub fn from_i64(i: i64) -> Self {
        Number {
            f: i as f64,
            i: Some(i),
            u: u64::try_from(i).ok(),
        }
    }

    /// Float view (always available).
    pub fn as_f64(&self) -> f64 {
        self.f
    }

    /// Exact unsigned view, also accepting floats with integral values.
    pub fn as_u64(&self) -> Option<u64> {
        self.u.or_else(|| {
            (self.f.fract() == 0.0 && self.f >= 0.0 && self.f <= u64::MAX as f64)
                .then_some(self.f as u64)
        })
    }

    /// Exact signed view, also accepting floats with integral values.
    pub fn as_i64(&self) -> Option<i64> {
        self.i.or_else(|| {
            (self.f.fract() == 0.0 && self.f >= i64::MIN as f64 && self.f <= i64::MAX as f64)
                .then_some(self.f as i64)
        })
    }

    /// True when the number was parsed/constructed as an exact integer.
    pub fn is_exact_int(&self) -> bool {
        self.u.is_some() || self.i.is_some()
    }
}

/// An owned JSON value. Objects preserve insertion order (declaration
/// order when produced by the derive), keeping serialization byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// `[ ... ]`
    Array(Vec<Value>),
    /// `{ ... }` with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object view.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Look up a key in an object value (linear scan; objects here are
    /// small config/report records).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Build the JSON value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse `self` out of a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent. Most types
    /// treat that as an error; `Option<T>` yields `None` (matching serde).
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::msg(format!("missing field `{field}`")))
    }
}

/// Helper the derive expands to for absent fields — dispatches to
/// [`Deserialize::missing_field`] with the target type inferred from the
/// field position.
pub fn __missing_field<T: Deserialize>(field: &str) -> Result<T, Error> {
    T::missing_field(field)
}

/// Helper the derive expands to for object lookups.
pub fn __get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

macro_rules! impl_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$via(*self as _))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_number()
                    .ok_or_else(|| Error::msg(concat!("expected number for ", stringify!($t))))?;
                let raw = n
                    .as_i64()
                    .map(|i| i as i128)
                    .or_else(|| n.as_u64().map(|u| u as i128))
                    .ok_or_else(|| Error::msg(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_int!(
    u8 => from_u64, u16 => from_u64, u32 => from_u64, u64 => from_u64, usize => from_u64,
    i8 => from_i64, i16 => from_i64, i32 => from_i64, i64 => from_i64, isize => from_i64,
);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_number()
                    .map(|n| n.as_f64() as $t)
                    .ok_or_else(|| Error::msg(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // `&'static str` fields (e.g. interned profile names) are leaked on
        // deserialization; these structs are parsed a handful of times per
        // process, never in a loop.
        v.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|got| Error::msg(format!("expected array of {N}, got {}", got.len())))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::msg("expected 2-array"))?;
        if a.len() != 2 {
            return Err(Error::msg("expected 2-array"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::msg("expected 3-array"))?;
        if a.len() != 3 {
            return Err(Error::msg("expected 3-array"));
        }
        Ok((
            A::from_value(&a[0])?,
            B::from_value(&a[1])?,
            C::from_value(&a[2])?,
        ))
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so map serialization is deterministic across runs —
        // HashMap iteration order is randomized by the hasher state.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

// Map keys must serialize to JSON strings (String itself, or a unit enum
// variant), matching upstream serde_json's rule for object keys.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::String(s) => s,
                        other => panic!("map key must serialize to a string, got {other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}
