//! JSON text layer over the in-repo `serde` value tree (offline build).
//!
//! Provides the four entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`from_value`] — plus the [`Error`]
//! and [`Value`] re-exports. Output is deterministic: object fields appear
//! in declaration order (maps are pre-sorted by the serde impls), and float
//! formatting follows Rust's shortest-roundtrip `Display` with a `.0`
//! suffix for integral values, matching upstream serde_json closely enough
//! for byte-identity *within* this implementation, which is what the sweep
//! determinism tests compare.

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Number, Serialize};
use std::fmt::Write as _;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Convert an already-parsed [`Value`] into a `Deserialize` type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Serialize any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    if let Some(u) = n.as_u64() {
        if n.is_exact_int() {
            let _ = write!(out, "{u}");
            return;
        }
    }
    if let Some(i) = n.as_i64() {
        if n.is_exact_int() {
            let _ = write!(out, "{i}");
            return;
        }
    }
    let f = n.as_f64();
    if !f.is_finite() {
        // JSON has no NaN/inf; upstream serde_json errors — we emit null so
        // diagnostics stay readable instead of aborting a whole sweep line.
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{f}");
    // Keep floats visually distinct from ints, as upstream does.
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {} in JSON input",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {} in JSON input",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {} in JSON input",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!(
                "invalid literal at byte {} in JSON input",
                self.pos
            )))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {} in JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {} in JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(
                                c.ok_or_else(|| Error::msg("invalid \\u escape in JSON string"))?,
                            );
                            continue;
                        }
                        _ => return Err(Error::msg("invalid escape in JSON string")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is a &str so boundaries
                    // are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in JSON string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated JSON string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape in JSON string"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid \\u escape in JSON string"))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::msg("invalid \\u escape in JSON string"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number in JSON input"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        let f = text
            .parse::<f64>()
            .map_err(|_| Error::msg(format!("invalid number `{text}` in JSON input")))?;
        Ok(Value::Number(Number::from_f64(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v: Value = from_str(r#"{"a": 1, "b": [true, null, "x\n"], "c": -2.5}"#).unwrap();
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[true,null,"x\n"],"c":-2.5}"#);
        let v2: Value = from_str(&s).unwrap();
        assert_eq!(to_string(&v2).unwrap(), s);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let s = to_string(&3.0_f64).unwrap();
        assert_eq!(s, "3.0");
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
