//! Minimal benchmark harness exposing the `criterion` API surface the
//! workspace uses (offline build). Each benchmark is timed by running
//! warmup iterations to estimate per-iteration cost, then a measured batch
//! sized to ~`sample_size` samples; the median per-iteration time (and
//! derived throughput, when set) prints to stdout.
//!
//! `cargo bench` runs it like upstream criterion; `cargo test` compiles
//! the benches and runs each benchmark once (smoke mode) so CI keeps them
//! honest without paying the measurement cost.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    /// Smoke mode: run the routine once, skip measurement.
    smoke: bool,
    /// Median nanoseconds per iteration, filled in by `iter`.
    median_ns: f64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            std::hint::black_box(routine());
            return;
        }
        // Warmup: estimate cost so the measured batches take ~10ms each.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(200) {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;
        let batch = ((10_000_000.0 / est_ns.max(1.0)).ceil() as u64).clamp(1, 1_000_000);
        let samples = 15usize;
        let mut per_iter = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

/// Top-level harness handle.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the harness still runs `main`; keep that cheap
        // by only smoke-testing unless invoked via `cargo bench` (which
        // passes `--bench`).
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Self { smoke: !bench_mode }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(None, &id.into(), None, self.smoke, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            smoke: self.smoke,
            _parent: self,
        }
    }

    /// Upstream parity no-op: configuration methods the shim ignores.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&self) {}
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    smoke: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into(), self.throughput, self.smoke, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    smoke: bool,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        smoke,
        median_ns: 0.0,
    };
    f(&mut b);
    if smoke {
        println!("bench {label}: ok (smoke)");
        return;
    }
    let ns = b.median_ns;
    let time = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let per_sec = n as f64 / (ns / 1e9);
            println!("bench {label}: {time}/iter ({per_sec:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            let per_sec = n as f64 / (ns / 1e9);
            println!(
                "bench {label}: {time}/iter ({:.1} MiB/s)",
                per_sec / (1 << 20) as f64
            );
        }
        _ => println!("bench {label}: {time}/iter"),
    }
}

/// Mirror of criterion's group declaration macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirror of criterion's main-entry macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
