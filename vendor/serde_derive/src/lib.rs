//! `#[derive(Serialize, Deserialize)]` for the in-repo serde replacement.
//!
//! Parses the item's token stream by hand (no `syn`/`quote` available
//! offline) and emits impls of `serde::Serialize` / `serde::Deserialize`.
//!
//! Supported shapes — the full set the workspace uses:
//! * structs with named fields, tuple structs (a single field serializes
//!   as the bare inner value, i.e. serde's newtype convention);
//! * enums with unit, tuple, and struct variants (externally tagged);
//! * the container attribute `#[serde(default)]`.
//!
//! Generics and field-level serde attributes are intentionally not
//! supported; hitting one fails the build loudly rather than silently
//! mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::NamedStruct { fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n",
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        ItemKind::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                let name = &item.name;
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})), "
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\"\
                             .to_string(), ::serde::Value::Object(vec![{pushes}]))]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}",
        item.name
    )
    .parse()
    .expect("derive(Serialize) generated invalid Rust")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct { fields } => {
            let prelude = format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::msg(\
                 \"expected object for {name}\"))?;\n"
            );
            let default_line = if item.container_default {
                format!("let __dflt = <{name} as ::core::default::Default>::default();\n")
            } else {
                String::new()
            };
            let mut inits = String::new();
            for f in fields {
                let absent = if item.container_default {
                    format!("__dflt.{f}")
                } else {
                    format!("::serde::__missing_field(\"{f}\")?")
                };
                inits.push_str(&format!(
                    "{f}: match ::serde::__get(__obj, \"{f}\") {{\n\
                     Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                     None => {absent},\n}},\n"
                ));
            }
            format!("{prelude}{default_line}Ok({name} {{\n{inits}}})")
        }
        ItemKind::TupleStruct { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemKind::TupleStruct { arity } => {
            let mut gets = String::new();
            for i in 0..*arity {
                gets.push_str(&format!("::serde::Deserialize::from_value(&__arr[{i}])?, "));
            }
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::msg(\
                 \"expected array for {name}\"))?;\n\
                 if __arr.len() != {arity} {{\n\
                 return Err(::serde::Error::msg(\"wrong tuple arity for {name}\"));\n}}\n\
                 Ok({name}({gets}))"
            )
        }
        ItemKind::Enum { variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                        // Also accept the externally-tagged object form
                        // {"Variant": null}.
                        keyed_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(\
                         __inner)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let mut gets = String::new();
                        for i in 0..*n {
                            gets.push_str(&format!(
                                "::serde::Deserialize::from_value(&__arr[{i}])?, "
                            ));
                        }
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __arr = __inner.as_array().ok_or_else(|| ::serde::Error::msg(\
                             \"expected array for {name}::{vn}\"))?;\n\
                             if __arr.len() != {n} {{\n\
                             return Err(::serde::Error::msg(\"wrong arity for {name}::{vn}\"));\n}}\n\
                             return Ok({name}::{vn}({gets}));\n}}\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: match __inner.get(\"{f}\") {{\n\
                                 Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                                 None => ::serde::__missing_field(\"{f}\")?,\n}},\n"
                            ));
                        }
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 __other => return Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{__other}}` for {name}\"))),\n}}\n}}\n\
                 if let Some(__obj) = __v.as_object() {{\n\
                 if __obj.len() == 1 {{\n\
                 let (__tag, __inner) = (&__obj[0].0, &__obj[0].1);\n\
                 match __tag.as_str() {{\n{keyed_arms}\
                 __other => return Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{__other}}` for {name}\"))),\n}}\n}}\n}}\n\
                 Err(::serde::Error::msg(\"expected variant string or single-key object for {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         #[allow(unreachable_code)]\n\
         fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}"
    )
    .parse()
    .expect("derive(Deserialize) generated invalid Rust")
}

struct Item {
    name: String,
    container_default: bool,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Parse the derive input: outer attributes, visibility, `struct`/`enum`,
/// name, then the body group.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut container_default = false;

    // Outer attributes (doc comments arrive as #[doc = "..."]).
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            if attr_is_serde_default(g.stream()) {
                container_default = true;
            }
        }
        i += 2;
    }
    // Visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind_kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic type `{name}` is not supported by the offline serde shim");
    }

    let kind = match kind_kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct {
                    fields: parse_named_fields(g.stream()),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct {
                    arity: count_top_level_fields(g.stream()),
                }
            }
            other => panic!("serde derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => ItemKind::Enum {
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Item {
        name,
        container_default,
        kind,
    }
}

/// Does a `#[...]` attribute group read `serde(default)`?
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let inner: Vec<String> = args.stream().into_iter().map(|t| t.to_string()).collect();
            if inner.iter().any(|t| t == "default") {
                return true;
            }
            panic!(
                "serde derive: unsupported serde attribute `{}` (offline shim supports only \
                 #[serde(default)])",
                inner.join("")
            );
        }
        _ => false,
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes on the field.
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                attr_is_serde_default(g.stream());
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde derive: expected field name, found {other}"),
        }
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde derive: expected `:` after field name"
        );
        i += 1;
        // Skip the type: consume until a top-level `,` (angle-bracket depth
        // aware — generic args contain commas).
        let mut angle_depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth: i32 = 0;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if idx == tokens.len() - 1 {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

/// Variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant`.
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
